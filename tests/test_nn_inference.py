"""Tests for the tape-free inference path (``repro.nn.inference``).

Covers the dispatch switches (env var + override + context manager), the
weight-cast cache contract, layer ``infer`` parity against the tape path
(bitwise in float64 mode, bounded drift in float32), the differential
oracle's inference twins, ``no_grad`` reentrancy/thread-safety, and the
``ResilientReranker.warmup`` hook.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro.nn as nn
import repro.nn.functional as F
from repro.nn import inference
from repro.nn.tensor import Tensor, is_grad_enabled, no_grad
from repro.testing.oracle import (
    check_all_infer_kernels,
    check_infer_kernel,
    max_ulp_diff_in_dtype,
)


@pytest.fixture(autouse=True)
def _reset_infer_override():
    """Tests toggle the module flag; never leak it across tests."""
    yield
    inference.set_infer(None)


# ----------------------------------------------------------------------
# Dispatch switches
# ----------------------------------------------------------------------


def test_infer_enabled_env_var(monkeypatch):
    inference.set_infer(None)
    monkeypatch.delenv("REPRO_NN_INFER", raising=False)
    assert inference.infer_enabled()  # default on
    for off in ("0", "false", "no", "FALSE"):
        monkeypatch.setenv("REPRO_NN_INFER", off)
        assert not inference.infer_enabled()
    monkeypatch.setenv("REPRO_NN_INFER", "1")
    assert inference.infer_enabled()


def test_set_infer_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_NN_INFER", "0")
    inference.set_infer(True)
    assert inference.infer_enabled()
    inference.set_infer(None)
    assert not inference.infer_enabled()


def test_use_infer_nests_and_restores():
    inference.set_infer(True)
    with inference.use_infer(False):
        assert not inference.infer_enabled()
        with inference.use_infer(True):
            assert inference.infer_enabled()
        assert not inference.infer_enabled()
    assert inference.infer_enabled()


def test_infer_dtype_env(monkeypatch):
    monkeypatch.delenv("REPRO_NN_INFER_DTYPE", raising=False)
    assert inference.infer_dtype() == np.dtype(np.float32)
    monkeypatch.setenv("REPRO_NN_INFER_DTYPE", "float64")
    assert inference.infer_dtype() == np.dtype(np.float64)


# ----------------------------------------------------------------------
# no_grad: reentrancy + thread isolation
# ----------------------------------------------------------------------


def test_no_grad_nesting_restores_each_level():
    assert is_grad_enabled()
    with no_grad():
        assert not is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        # Exiting the inner block must NOT re-enable gradients.
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_no_grad_single_instance_is_reentrant():
    guard = no_grad()
    with guard:
        with guard:  # same instance entered recursively
            assert not is_grad_enabled()
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_no_grad_restores_on_exception():
    with pytest.raises(RuntimeError):
        with no_grad():
            raise RuntimeError("boom")
    assert is_grad_enabled()


def test_no_grad_is_thread_local():
    seen = {}

    def worker():
        seen["enabled_in_thread"] = is_grad_enabled()
        with no_grad():
            seen["disabled_in_thread"] = not is_grad_enabled()

    with no_grad():
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        # The main thread's no_grad must not leak into the worker...
        assert seen["enabled_in_thread"]
        assert seen["disabled_in_thread"]
        # ...and the worker's exit must not re-enable the main thread.
        assert not is_grad_enabled()
    assert is_grad_enabled()


def test_no_grad_skips_tape_construction():
    x = Tensor(np.ones((2, 3)))
    with no_grad():
        y = (x * 2.0).sum()
    assert y._backward is None
    assert y._parents == ()


# ----------------------------------------------------------------------
# Weight-cast cache
# ----------------------------------------------------------------------


def test_cached_weights_hits_until_rebind():
    layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
    calls = []

    def build(dtype):
        calls.append(dtype)
        return layer.weight.data.astype(dtype)

    first = inference.cached_weights(layer, "w", [layer.weight], build)
    second = inference.cached_weights(layer, "w", [layer.weight], build)
    assert first is second and len(calls) == 1
    # Rebinding param.data (what optimizers/load_state_dict do) misses.
    layer.weight.data = layer.weight.data.copy()
    third = inference.cached_weights(layer, "w", [layer.weight], build)
    assert third is not first and len(calls) == 2


def test_cached_weights_keyed_on_dtype(monkeypatch):
    layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
    build = lambda dtype: layer.weight.data.astype(dtype)  # noqa: E731
    monkeypatch.setenv("REPRO_NN_INFER_DTYPE", "float32")
    f32 = inference.cached_weights(layer, "w", [layer.weight], build)
    monkeypatch.setenv("REPRO_NN_INFER_DTYPE", "float64")
    f64 = inference.cached_weights(layer, "w", [layer.weight], build)
    assert f32.dtype == np.float32 and f64.dtype == np.float64


def test_invalidate_caches_recurses():
    mlp = nn.MLP([4, 5, 3], rng=np.random.default_rng(0))
    x = np.random.default_rng(1).standard_normal((2, 4)).astype(np.float32)
    mlp.infer(x)  # populate the per-Linear caches

    def cache_keys(module):
        keys = [k for k in module.__dict__ if k.startswith("_infer_cache_")]
        for child in module.children():
            keys.extend(cache_keys(child))
        return keys

    assert cache_keys(mlp), "expected MLP.infer to populate weight-cast caches"
    inference.invalidate_caches(mlp)
    assert not cache_keys(mlp)


def test_cache_tracks_optimizer_step():
    """After an SGD step the cast weights must reflect the new values."""
    layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).standard_normal((4, 3)).astype(np.float32)
    before = layer.infer(x).copy()
    loss = layer.forward(Tensor(x.astype(np.float64))).sum()
    loss.backward()
    nn.SGD(layer.parameters(), lr=0.5).step()
    after = layer.infer(x)
    assert not np.allclose(before, after)
    expected = x @ layer.weight.data.T.astype(np.float32) + layer.bias.data.astype(
        np.float32
    )
    np.testing.assert_allclose(after, expected, rtol=1e-6, atol=1e-6)


# ----------------------------------------------------------------------
# Layer parity: float64 infer dtype == tape path bitwise (or ~1 ULP for
# reassociated reductions); float32 drift bounded.
# ----------------------------------------------------------------------

_RNG = np.random.default_rng(7)


def _layer_cases():
    rng = np.random.default_rng(3)
    batch, time, feat = 2, 5, 4
    x = _RNG.standard_normal((batch, time, feat))
    mask = np.ones((batch, time), dtype=bool)
    mask[1, 3:] = False
    cases = [
        ("linear", nn.Linear(feat, 3, rng=rng), (x,), {}),
        ("mlp", nn.MLP([feat, 6, 2], rng=rng), (x,), {}),
        ("layer_norm", nn.LayerNorm(feat), (x,), {}),
        ("lstm", nn.LSTM(feat, 3, rng=rng), (x,), {"mask": mask}),
        ("gru", nn.GRU(feat, 3, rng=rng), (x,), {"mask": mask}),
        ("bilstm", nn.BiLSTM(feat, 3, rng=rng), (x,), {"mask": mask}),
        ("self_attention", nn.SelfAttention(), (x,), {"mask": mask}),
        (
            "mhsa",
            nn.MultiHeadSelfAttention(feat, 2, rng=rng),
            (x,),
            {"mask": mask},
        ),
        (
            "transformer",
            nn.TransformerEncoderLayer(feat, 2, rng=rng),
            (x,),
            {"mask": mask},
        ),
    ]
    return cases


def _tape_forward(module, args, kwargs):
    with no_grad():
        out = module.forward(*[Tensor(a) for a in args], **kwargs)
    if isinstance(out, tuple):
        return tuple(np.asarray(o.data) for o in out)
    return np.asarray(out.data)


@pytest.mark.parametrize(
    "name,module,args,kwargs",
    _layer_cases(),
    ids=[c[0] for c in _layer_cases()],
)
def test_layer_infer_parity_float64(name, module, args, kwargs, monkeypatch):
    """In float64 the fast path is the same arithmetic — (near-)bitwise."""
    monkeypatch.setenv("REPRO_NN_INFER_DTYPE", "float64")
    reference = _tape_forward(module, args, kwargs)
    fast = module.infer(*args, **kwargs)
    if not isinstance(reference, tuple):
        reference, fast = (reference,), (fast,)
    for ref, out in zip(reference, fast):
        assert np.asarray(out).dtype == np.float64
        # Reductions may reassociate (matmul blocking, layer-norm mean),
        # residual chains compound it, and the scans' in-place sigmoid is a
        # couple of ULPs from the tape's stable form: allow a few
        # final-place units.  Same near-zero escape as the oracle — where
        # the values themselves are ~0, ULP spacing collapses and the
        # absolute bound is the meaningful one.
        zero_atol = 16 * float(np.finfo(np.float64).eps)
        ulp = max_ulp_diff_in_dtype(ref, out, np.float64, zero_atol=zero_atol)
        assert ulp <= 8.0, name
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=zero_atol)


@pytest.mark.parametrize(
    "name,module,args,kwargs",
    _layer_cases(),
    ids=[c[0] for c in _layer_cases()],
)
def test_layer_infer_drift_float32(name, module, args, kwargs, monkeypatch):
    """In float32 the drift against the float64 tape stays within ~100 eps."""
    monkeypatch.setenv("REPRO_NN_INFER_DTYPE", "float32")
    inference.invalidate_caches(module)
    reference = _tape_forward(module, args, kwargs)
    # The serving layer casts inputs once at assembly; mirror that here.
    fast = module.infer(*[a.astype(np.float32) for a in args], **kwargs)
    if not isinstance(reference, tuple):
        reference, fast = (reference,), (fast,)
    for ref, out in zip(reference, fast):
        assert np.asarray(out).dtype == np.float32
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)


def test_module_infer_fallback_is_tape_identical():
    """Modules without a fast path serve via forward-under-no_grad: exact."""

    class Custom(nn.Module):
        def __init__(self):
            super().__init__()
            self.proj = nn.Linear(4, 4, rng=np.random.default_rng(0))

        def forward(self, x):
            return F.softmax(self.proj(x).tanh(), axis=-1)

    module = Custom()
    x = _RNG.standard_normal((3, 4))
    reference = _tape_forward(module, (x,), {})
    fast = module.infer(x)
    assert fast.dtype == np.float64
    assert (fast == reference).all()


def test_functional_ndarray_passthrough():
    """repro.nn.functional dispatches raw ndarrays to the inference kernels."""
    x = _RNG.standard_normal((3, 5)).astype(np.float32)
    mask = np.ones((3, 5), dtype=bool)
    mask[2, 2:] = False
    for fn, ref in [
        (F.sigmoid, inference.sigmoid_nd),
        (F.relu, inference.relu_nd),
        (F.tanh, np.tanh),
    ]:
        out = fn(x)
        assert isinstance(out, np.ndarray) and out.dtype == np.float32
        assert (out == ref(x)).all()
    assert (F.softmax(x, axis=-1) == inference.softmax_nd(x, axis=-1)).all()
    assert (
        F.log_softmax(x, axis=-1) == inference.log_softmax_nd(x, axis=-1)
    ).all()
    assert (
        F.masked_softmax(x, mask) == inference.masked_softmax_nd(x, mask)
    ).all()
    # Tensor inputs still take the tape path and return Tensors.
    assert isinstance(F.sigmoid(Tensor(np.ones((2, 2)))), Tensor)


# ----------------------------------------------------------------------
# Differential oracle: inference twins
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_oracle_infer_twins_pass(seed):
    reports = check_all_infer_kernels(seed=seed)
    for name, report in reports.items():
        assert report.passed, f"{name} (seed {seed}):\n{report.format()}"


def test_oracle_infer_twins_cover_all_fused_kernels():
    from repro.nn.kernels import ORACLE_CASES

    assert set(ORACLE_CASES) <= set(inference.INFER_CASES)


def test_oracle_coverage_assertion_fires():
    from repro.nn.kernels import ORACLE_CASES

    ORACLE_CASES["fake_fused_kernel"] = object()
    try:
        with pytest.raises(KeyError, match="fake_fused_kernel"):
            check_all_infer_kernels()
    finally:
        del ORACLE_CASES["fake_fused_kernel"]


def test_check_infer_kernel_unknown_name():
    with pytest.raises(KeyError, match="no inference-twin"):
        check_infer_kernel("not_a_kernel")


def test_oracle_catches_structural_bug():
    """A wrong gate order must blow the ULP budget, not hide in tolerance."""
    build = inference.INFER_CASES["lstm_scan_fused"]
    reference_fn, infer_fn, arrays, _ = build(np.random.default_rng(0))
    dtype = inference.infer_dtype()
    reference = reference_fn(*[np.array(a, dtype=np.float64) for a in arrays])
    cast = [np.asarray(a).astype(dtype) for a in arrays]
    gates = cast[0]
    hidden = gates.shape[-1] // 4
    # Swap the input and forget gate blocks — a classic porting bug.
    swapped = np.concatenate(
        [gates[..., hidden : 2 * hidden], gates[..., :hidden], gates[..., 2 * hidden :]],
        axis=-1,
    )
    bad = infer_fn(swapped, *cast[1:])
    zero_atol = float(16 * np.finfo(dtype).eps)
    ulp = max_ulp_diff_in_dtype(reference, bad, dtype, zero_atol=zero_atol)
    assert ulp > 1e6


def test_max_ulp_diff_in_dtype_basics():
    a = np.array([1.0, -2.0, 0.5], dtype=np.float32)
    assert max_ulp_diff_in_dtype(a, a.copy()) == 0.0
    neighbor = np.nextafter(a, np.float32(np.inf))
    assert max_ulp_diff_in_dtype(a, neighbor) == 1.0
    # Crossing zero is many ULPs apart but tiny in magnitude: the
    # near-zero escape treats it as equal.
    tiny = np.array([1e-8], dtype=np.float32)
    assert max_ulp_diff_in_dtype(tiny, -tiny) > 1e6
    assert max_ulp_diff_in_dtype(tiny, -tiny, zero_atol=1e-6) == 0.0
    assert max_ulp_diff_in_dtype(a, a[:2]) == float("inf")
    with_nan = a.copy()
    with_nan[0] = np.nan
    assert max_ulp_diff_in_dtype(a, with_nan) == float("inf")
    assert max_ulp_diff_in_dtype(with_nan, with_nan.copy()) == 0.0


# ----------------------------------------------------------------------
# Serving integration: warmup
# ----------------------------------------------------------------------


def test_resilient_warmup_touches_every_stage():
    from repro.rerank.base import Reranker
    from repro.resilience.degrade import ResilientReranker

    calls = []

    class Stage(Reranker):
        def __init__(self, name, fail=False):
            self.name = name
            self._fail = fail

        def rerank(self, batch):
            calls.append(self.name)
            if self._fail:
                raise RuntimeError("not warmed up")
            return np.tile(np.arange(batch.list_length), (batch.batch_size, 1))

    class FakeBatch:
        batch_size = 2
        list_length = 3

    serving = ResilientReranker(
        Stage("primary", fail=True),
        fallbacks=[Stage("mmr")],
        deadline_ms=None,
    )
    serving.warmup(FakeBatch())
    # Every stage is touched; a failing stage must not abort the others.
    assert calls == ["primary", "mmr"]
