"""Unit tests for PD-GAN internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rerank.pd_gan import _marginal_logdet_gains


class TestMarginalLogdetGains:
    def test_empty_selection_gives_zero_gains(self):
        similarity = np.eye(4)
        gains = _marginal_logdet_gains(similarity, [], np.arange(4))
        assert np.allclose(gains, 0.0)

    def test_duplicate_item_has_low_gain(self):
        """An item identical to the selected one must gain (near) -inf
        log-det relative to a dissimilar item."""
        similarity = np.array(
            [
                [1.0, 0.999, 0.0],
                [0.999, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        gains = _marginal_logdet_gains(similarity, [0], np.array([1, 2]))
        assert gains[0] < gains[1]
        assert gains[1] == pytest.approx(0.0, abs=1e-3)

    def test_orthogonal_item_full_gain(self):
        similarity = np.eye(3)
        gains = _marginal_logdet_gains(similarity, [0], np.array([1, 2]))
        assert np.allclose(gains, 0.0, atol=1e-4)  # log(1) = 0

    def test_numerically_safe_with_singular_selection(self):
        """Two identical selected items make the submatrix singular; the
        regularizer must keep the computation finite."""
        similarity = np.ones((3, 3))
        gains = _marginal_logdet_gains(similarity, [0, 1], np.array([2]))
        assert np.isfinite(gains).all()


class TestPDGANSetDescriptor:
    def test_descriptor_dimensions(self, taobao_world):
        from repro.data import RankingRequest, build_batch
        from repro.rerank import PDGANReranker

        world = taobao_world
        histories = world.sample_histories()
        request = RankingRequest(
            0, np.arange(6), np.zeros(6), clicks=np.zeros(6)
        )
        batch = build_batch([request], world.catalog, world.population, histories)
        reranker = PDGANReranker(hidden=8)
        descriptor = reranker._set_descriptor(batch, 0, np.array([0, 2]))
        expected_dim = (
            world.population.feature_dim + world.catalog.feature_dim + 5
        )
        assert descriptor.shape == (expected_dim,)

    def test_empty_set_descriptor_is_zero_items(self, taobao_world):
        from repro.data import RankingRequest, build_batch
        from repro.rerank import PDGANReranker

        world = taobao_world
        histories = world.sample_histories()
        request = RankingRequest(0, np.arange(6), np.zeros(6), clicks=np.zeros(6))
        batch = build_batch([request], world.catalog, world.population, histories)
        reranker = PDGANReranker(hidden=8)
        descriptor = reranker._set_descriptor(batch, 0, np.array([], dtype=int))
        q_u = world.population.feature_dim
        assert np.allclose(descriptor[q_u:], 0.0)
