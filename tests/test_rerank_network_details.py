"""Architecture-level behavior tests for the neural baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RankingRequest, build_batch
from repro.rerank import (
    DESAReranker,
    PRMReranker,
    SetRankReranker,
)


@pytest.fixture(scope="module")
def batches(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    items = rng.choice(world.config.num_items, size=8, replace=False)
    scores = rng.normal(size=8)
    base = RankingRequest(0, items, scores, clicks=np.zeros(8))
    perm = rng.permutation(8)
    permuted = RankingRequest(0, items[perm], scores[perm], clicks=np.zeros(8))
    batch_a = build_batch([base], world.catalog, world.population, histories)
    batch_b = build_batch([permuted], world.catalog, world.population, histories)
    return world, histories, base, batch_a, batch_b, perm


def _fitted(cls, world, histories, request):
    model = cls(hidden=8, epochs=1, batch_size=2, seed=0)
    model.fit([request] * 4, world.catalog, world.population, histories)
    return model


class TestPositionSensitivity:
    def test_prm_scores_depend_on_position(self, batches):
        """PRM uses learned position embeddings: permuting the input list
        must change per-item scores (not just permute them)."""
        world, histories, request, batch_a, batch_b, perm = batches
        model = _fitted(PRMReranker, world, histories, request)
        scores_a = model.score_batch(batch_a)[0]
        scores_b = model.score_batch(batch_b)[0]
        # If PRM were permutation-equivariant: scores_b == scores_a[perm].
        assert not np.allclose(scores_b, scores_a[perm], atol=1e-8)

    def test_setrank_scores_are_permutation_equivariant(self, batches):
        """SetRank has no position embeddings; scores must follow items."""
        world, histories, request, batch_a, batch_b, perm = batches
        model = _fitted(SetRankReranker, world, histories, request)
        scores_a = model.score_batch(batch_a)[0]
        scores_b = model.score_batch(batch_b)[0]
        # The initial-score feature is z-normalized per list, so it is also
        # permutation-equivariant; the whole model must be too.
        assert np.allclose(scores_b, scores_a[perm], atol=1e-8)

    def test_setrank_rerank_invariant_to_input_order(self, batches):
        """Consequently SetRank's *chosen items* ignore the initial order."""
        world, histories, request, batch_a, batch_b, perm = batches
        model = _fitted(SetRankReranker, world, histories, request)
        items_a = request.items[model.rerank(batch_a)[0]]
        items_b = request.items[perm][model.rerank(batch_b)[0]]
        assert np.array_equal(items_a, items_b)


class TestDESABranches:
    def test_diversity_branch_reacts_to_coverage_only(self, batches):
        """Zeroing the coverage must change DESA's scores (the diversity
        branch consumes it twice: in list features and its own branch)."""
        world, histories, request, batch_a, _, _ = batches
        model = _fitted(DESAReranker, world, histories, request)
        scores = model.score_batch(batch_a)
        import copy

        batch_zero = copy.deepcopy(batch_a)
        batch_zero.coverage[:] = 0.0
        scores_zero = model.score_batch(batch_zero)
        assert not np.allclose(scores, scores_zero)


class TestBatchingPropagation:
    def test_iterate_batches_propagates_history_lengths(self, taobao_world):
        from repro.data import iterate_batches

        world = taobao_world
        histories = world.sample_histories()
        rng = np.random.default_rng(0)
        requests = [
            RankingRequest(
                0,
                rng.choice(world.config.num_items, size=5, replace=False),
                rng.normal(size=5),
            )
            for _ in range(4)
        ]
        batch = next(
            iterate_batches(
                requests,
                world.catalog,
                world.population,
                histories,
                batch_size=4,
                topic_history_length=3,
                flat_history_length=7,
            )
        )
        assert batch.topic_history_features.shape[2] == 3
        assert batch.history_features.shape[1] == 7
