"""Failure-injection tests: degenerate inputs the pipeline must survive."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RapidConfig, RapidModel, marginal_diversity
from repro.data import (
    Catalog,
    Population,
    RankingRequest,
    build_batch,
    split_history_by_topic,
)
from repro.rerank import DPPReranker, MMRReranker, SSDReranker
from repro.rerank.neural import normalized_initial_scores


def _flat_world(num_topics=3, num_items=20, num_users=4, q=4):
    """A minimal hand-built world with controllable degeneracies."""
    rng = np.random.default_rng(0)
    coverage = np.zeros((num_items, num_topics))
    coverage[np.arange(num_items), rng.integers(0, num_topics, num_items)] = 1.0
    catalog = Catalog(features=rng.normal(size=(num_items, q)), coverage=coverage)
    theta = np.full((num_users, num_topics), 1.0 / num_topics)
    population = Population(
        features=rng.normal(size=(num_users, q)),
        topic_preference=theta,
        diversity_weight=theta.copy(),
        latent=rng.normal(size=(num_users, q)),
    )
    return catalog, population


class TestEmptyAndDegenerateHistories:
    def test_batch_with_empty_history(self):
        catalog, population = _flat_world()
        histories = [np.array([], dtype=np.int64) for _ in range(4)]
        request = RankingRequest(0, np.arange(5), np.zeros(5))
        batch = build_batch([request], catalog, population, histories)
        assert not batch.history_mask.any()
        assert not batch.topic_history_mask.any()

    def test_rapid_scores_with_empty_history(self):
        catalog, population = _flat_world()
        histories = [np.array([], dtype=np.int64) for _ in range(4)]
        request = RankingRequest(0, np.arange(5), np.zeros(5))
        batch = build_batch([request], catalog, population, histories)
        model = RapidModel(
            RapidConfig(user_dim=4, item_dim=4, num_topics=3, hidden=8)
        )
        scores = model.inference_scores(batch)
        assert np.isfinite(scores).all()

    def test_single_topic_user_history(self):
        catalog, population = _flat_world()
        topic0_items = np.flatnonzero(catalog.coverage[:, 0] == 1.0)
        histories = [topic0_items for _ in range(4)]
        ids, mask = split_history_by_topic(
            histories[0], catalog.coverage, 3, max_length=5
        )
        assert mask[0].any()
        assert not mask[1].any() and not mask[2].any()

        request = RankingRequest(0, np.arange(5), np.zeros(5))
        batch = build_batch([request], catalog, population, histories)
        model = RapidModel(
            RapidConfig(user_dim=4, item_dim=4, num_topics=3, hidden=8)
        )
        theta = model.preference_distribution(batch)
        assert np.allclose(theta.sum(axis=1), 1.0)


class TestDegenerateCoverage:
    def test_all_items_same_topic(self):
        """Every candidate covers only topic 0 — diversity is identically
        saturated, and everything must stay finite."""
        coverage = np.zeros((6, 3))
        coverage[:, 0] = 1.0
        d = marginal_diversity(coverage)
        assert np.isfinite(d).all()
        assert np.allclose(d, 0.0)

    def test_zero_coverage_items(self):
        coverage = np.zeros((4, 3))
        d = marginal_diversity(coverage)
        assert np.allclose(d, 0.0)

    def test_mmr_with_identical_coverage(self):
        catalog, population = _flat_world()
        catalog.coverage[:] = 0.0
        catalog.coverage[:, 0] = 1.0
        histories = [np.arange(3) for _ in range(4)]
        request = RankingRequest(0, np.arange(6), np.arange(6.0))
        batch = build_batch([request], catalog, population, histories)
        perm = MMRReranker(tradeoff=0.5).rerank(batch)
        assert sorted(perm[0].tolist()) == list(range(6))

    def test_dpp_with_identical_items(self):
        catalog, population = _flat_world()
        catalog.features[:] = 1.0
        catalog.coverage[:] = 0.0
        catalog.coverage[:, 0] = 1.0
        histories = [np.arange(3) for _ in range(4)]
        request = RankingRequest(0, np.arange(6), np.zeros(6))
        batch = build_batch([request], catalog, population, histories)
        perm = DPPReranker().rerank(batch)
        assert sorted(perm[0].tolist()) == list(range(6))

    def test_ssd_with_zero_descriptors(self):
        catalog, population = _flat_world()
        catalog.features[:] = 0.0
        catalog.coverage[:] = 0.0
        histories = [np.arange(3) for _ in range(4)]
        request = RankingRequest(0, np.arange(5), np.zeros(5))
        batch = build_batch([request], catalog, population, histories)
        perm = SSDReranker().rerank(batch)
        assert sorted(perm[0].tolist()) == list(range(5))


class TestDegenerateScores:
    def test_constant_initial_scores(self):
        catalog, population = _flat_world()
        histories = [np.arange(3) for _ in range(4)]
        request = RankingRequest(0, np.arange(5), np.full(5, 7.0))
        batch = build_batch([request], catalog, population, histories)
        z = normalized_initial_scores(batch)
        assert np.isfinite(z).all()
        assert np.allclose(z, 0.0)

    def test_single_item_list(self):
        catalog, population = _flat_world()
        histories = [np.arange(3) for _ in range(4)]
        request = RankingRequest(0, np.array([2]), np.array([1.0]))
        batch = build_batch([request], catalog, population, histories)
        model = RapidModel(
            RapidConfig(user_dim=4, item_dim=4, num_topics=3, hidden=8)
        )
        scores = model.inference_scores(batch)
        assert scores.shape == (1, 1)
        assert np.isfinite(scores).all()
