"""Retry policy tests: classification, jittered backoff, budgets, telemetry."""

from __future__ import annotations

import pytest

from repro.obs import MemorySink, RunLogger, get_registry, set_run_logger
from repro.resilience import (
    DEFAULT_IO_POLICY,
    InjectedFault,
    RetryBudgetExceeded,
    RetryPolicy,
    call_with_retry,
    retry,
)


class FakeClock:
    """Monotonic clock advanced manually (or by the paired sleeper)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


class Flaky:
    """Fails ``failures`` times with ``error``, then returns ``value``."""

    def __init__(self, failures: int, error: Exception, value: str = "ok") -> None:
        self.failures = failures
        self.error = error
        self.value = value
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return self.value


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)

    def test_classification(self):
        policy = RetryPolicy(fatal=(ValueError,), retryable=(OSError,))
        assert policy.classify(ValueError()) == "fatal"
        assert policy.classify(OSError()) == "retryable"
        assert policy.classify(KeyError()) == "fatal"  # unknown → fatal
        lax = RetryPolicy(retry_unknown=True)
        assert lax.classify(KeyError()) == "retryable"

    def test_fatal_wins_over_retryable_subclass(self):
        # FileNotFoundError is an OSError; listing it fatal pins it fatal.
        policy = RetryPolicy(retryable=(OSError,), fatal=(FileNotFoundError,))
        assert policy.classify(FileNotFoundError()) == "fatal"

    def test_default_io_policy_retries_injected_faults(self):
        assert DEFAULT_IO_POLICY.classify(InjectedFault("data.load")) == "retryable"
        assert DEFAULT_IO_POLICY.classify(ValueError("bad schema")) == "fatal"


class TestCallWithRetry:
    def test_success_first_try_no_sleep(self):
        clock = FakeClock()
        result = call_with_retry(
            lambda: "ok", policy=RetryPolicy(), sleep=clock.sleep, clock=clock
        )
        assert result == "ok" and clock.now == 0.0

    def test_succeeds_after_transient_failures(self):
        clock = FakeClock()
        flaky = Flaky(2, OSError("disk hiccup"))
        result = call_with_retry(
            flaky,
            policy=RetryPolicy(max_attempts=3),
            site="t",
            sleep=clock.sleep,
            clock=clock,
        )
        assert result == "ok" and flaky.calls == 3

    def test_budget_exhausted_wraps_last_error(self):
        clock = FakeClock()
        flaky = Flaky(10, OSError("still down"))
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            call_with_retry(
                flaky,
                policy=RetryPolicy(max_attempts=4),
                site="t",
                sleep=clock.sleep,
                clock=clock,
            )
        assert flaky.calls == 4
        assert excinfo.value.attempts == 4
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_fatal_error_propagates_immediately(self):
        flaky = Flaky(10, ValueError("bad shape"))
        with pytest.raises(ValueError, match="bad shape"):
            call_with_retry(flaky, policy=RetryPolicy(max_attempts=5))
        assert flaky.calls == 1

    def test_decorrelated_jitter_stays_in_envelope(self):
        clock = FakeClock()
        naps: list[float] = []

        def sleep(seconds: float) -> None:
            naps.append(seconds)
            clock.sleep(seconds)

        policy = RetryPolicy(max_attempts=6, base_delay=0.01, max_delay=0.1, seed=1)
        with pytest.raises(RetryBudgetExceeded):
            call_with_retry(
                Flaky(10, OSError()), policy=policy, sleep=sleep, clock=clock
            )
        assert len(naps) == 5  # no sleep after the final attempt
        previous = policy.base_delay
        for nap in naps:
            assert policy.base_delay <= nap <= min(policy.max_delay, 3.0 * previous)
            previous = nap

    def test_backoff_is_seed_deterministic(self):
        def delays(seed: int) -> list[float]:
            clock = FakeClock()
            naps: list[float] = []

            def sleep(seconds: float) -> None:
                naps.append(seconds)
                clock.sleep(seconds)

            policy = RetryPolicy(max_attempts=5, seed=seed)
            with pytest.raises(RetryBudgetExceeded):
                call_with_retry(
                    Flaky(10, OSError()), policy=policy, sleep=sleep, clock=clock
                )
            return naps

        assert delays(3) == delays(3)
        assert delays(3) != delays(4)

    def test_deadline_cuts_attempts_short(self):
        clock = FakeClock()

        def failing() -> None:
            clock.sleep(0.6)  # each attempt burns wall clock
            raise OSError("slow")

        policy = RetryPolicy(max_attempts=10, deadline=1.0)
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            call_with_retry(failing, policy=policy, sleep=clock.sleep, clock=clock)
        assert excinfo.value.attempts == 2  # 1.2s elapsed > 1.0s deadline
        assert excinfo.value.elapsed >= 1.0

    def test_retry_emits_counter_and_runlog_events(self):
        get_registry().reset()
        sink = MemorySink()
        previous = set_run_logger(RunLogger(sink))
        clock = FakeClock()
        try:
            call_with_retry(
                Flaky(2, OSError("blip")),
                policy=RetryPolicy(max_attempts=3),
                site="data.load",
                sleep=clock.sleep,
                clock=clock,
            )
        finally:
            set_run_logger(previous)
        counter = get_registry().counter("resilience.retries", site="data.load")
        assert counter.value == 2
        events = sink.events("retry.attempt")
        assert [e["attempt"] for e in events] == [1, 2]
        assert all(e["error"] == "OSError" for e in events)


class TestDecorator:
    def test_decorator_retries_and_exposes_policy(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=3)
        state = {"calls": 0}

        @retry(policy, site="decorated", sleep=clock.sleep, clock=clock)
        def sometimes(value: int) -> int:
            state["calls"] += 1
            if state["calls"] < 3:
                raise OSError("transient")
            return value * 2

        assert sometimes(21) == 42
        assert state["calls"] == 3
        assert sometimes._retry_policy is policy

    def test_site_defaults_to_qualname(self):
        get_registry().reset()
        clock = FakeClock()

        @retry(RetryPolicy(max_attempts=2), sleep=clock.sleep, clock=clock)
        def wobbly():
            raise OSError("nope")

        with pytest.raises(RetryBudgetExceeded) as excinfo:
            wobbly()
        assert "wobbly" in excinfo.value.site


class TestDeadlineMidBackoff:
    def test_deadline_expiring_mid_backoff_keeps_cause_and_attempt_count(self):
        """The jittered backoff draw is clipped to what the deadline has
        left; when the clipped sleep lands exactly on the deadline, the
        next failure exhausts the budget — and the raised error still
        carries the original classified error plus the attempt count."""
        clock = FakeClock()
        error = OSError("NFS wobble")
        flaky = Flaky(10, error)
        policy = RetryPolicy(
            max_attempts=10, base_delay=5.0, max_delay=10.0, deadline=2.0
        )
        with pytest.raises(RetryBudgetExceeded) as excinfo:
            call_with_retry(
                flaky, policy=policy, site="nfs", sleep=clock.sleep, clock=clock
            )
        # the 5-10s jitter draw was clipped to the 2s the deadline had left
        assert clock.now == pytest.approx(2.0)
        assert flaky.calls == 2
        assert excinfo.value.attempts == 2
        assert "2 attempt(s)" in str(excinfo.value)
        assert excinfo.value.__cause__ is error
        assert policy.classify(excinfo.value.__cause__) == "retryable"
