"""Trace-context propagation tests: threads, processes, and merged traces.

The multiprocessing round-trip uses ``spawn`` (the start method whose
pickling rules are strictest) with a module-level worker, mirroring how a
real serving process would fan a request out to a worker pool.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading

import pytest

from repro.obs import reset_tracer, trace
from repro.obs.context import (
    TraceContext,
    chrome_trace_from_records,
    current_context,
    merge_span_records,
    propagated,
    span_records,
    use_context,
    write_chrome_trace,
)


@pytest.fixture(autouse=True)
def _fresh_tracer():
    reset_tracer()
    yield
    reset_tracer()


class TestTraceContext:
    def test_dict_round_trip(self):
        ctx = TraceContext(trace_id="abc", span_id="1f-2")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_header_round_trip(self):
        ctx = TraceContext(trace_id="abc", span_id="1f-2")
        assert ctx.to_header() == "abc-1f-2"
        assert TraceContext.from_header(ctx.to_header()) == ctx

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError):
            TraceContext.from_header("no_separator")

    def test_current_context_none_when_idle(self):
        assert current_context() is None

    def test_current_context_inside_span(self):
        with trace("outer") as span:
            ctx = current_context()
            assert ctx is not None
            assert ctx.trace_id == span.trace_id
            assert ctx.span_id == span.span_id
        assert current_context() is None


class TestPropagation:
    def test_use_context_links_new_roots_to_remote_parent(self):
        remote = TraceContext(trace_id="t" * 32, span_id="ff-1")
        with use_context(remote):
            assert current_context() == remote
            with trace("adopted") as span:
                assert span.trace_id == remote.trace_id
                assert span.parent_id == remote.span_id
        assert current_context() is None

    def test_use_context_none_is_a_noop(self):
        with use_context(None):
            with trace("fresh") as span:
                assert span.parent_id is None
                assert span.trace_id is not None

    def test_nested_spans_keep_local_linkage_under_remote_context(self):
        remote = TraceContext(trace_id="t" * 32, span_id="ff-1")
        with use_context(remote):
            with trace("root") as root:
                with trace("child") as child:
                    assert child.parent_id == root.span_id
                    assert child.trace_id == remote.trace_id

    def test_propagated_carries_context_across_threads(self):
        seen: dict[str, str | None] = {}

        def work():
            with trace("thread.work") as span:
                seen["trace_id"] = span.trace_id
                seen["parent_id"] = span.parent_id

        with trace("request") as span:
            thread = threading.Thread(target=propagated(work))
            thread.start()
            thread.join()
        assert seen["trace_id"] == span.trace_id
        assert seen["parent_id"] == span.span_id

    def test_propagated_captures_at_bind_time_not_run_time(self):
        with trace("request") as span:
            bound = propagated(lambda: current_context())
        # The span is closed by now; the binding must still point at it.
        ctx = bound()
        assert ctx is not None and ctx.span_id == span.span_id


class TestRecordsAndMerge:
    def test_span_records_are_json_safe_and_pid_tagged(self):
        with trace("a"):
            with trace("b"):
                pass
        records = span_records()
        assert {r["name"] for r in records} == {"a", "b"}
        for record in records:
            assert record["pid"] == os.getpid()
            assert record["duration_s"] >= 0.0
        json.dumps(records)  # must serialize without custom encoders

    def test_merge_sorts_by_wall_start_and_skips_dead_workers(self):
        a = [{"name": "late", "wall_start": 2.0}]
        b = [{"name": "early", "wall_start": 1.0}]
        merged = merge_span_records(a, None, b)
        assert [r["name"] for r in merged] == ["early", "late"]

    def test_chrome_events_relative_timestamps_and_linkage(self):
        records = [
            {
                "name": "parent",
                "trace_id": "t",
                "span_id": "1-1",
                "parent_id": None,
                "wall_start": 10.0,
                "duration_s": 0.5,
                "pid": 1,
                "tid": 7,
                "error": None,
            },
            {
                "name": "child",
                "trace_id": "t",
                "span_id": "2-1",
                "parent_id": "1-1",
                "wall_start": 10.1,
                "duration_s": 0.2,
                "pid": 2,
                "tid": 8,
                "error": "boom",
            },
        ]
        events = chrome_trace_from_records(records)
        assert [e["ph"] for e in events] == ["X", "X"]
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == pytest.approx(0.1e6)
        assert events[1]["args"]["parent_id"] == "1-1"
        assert events[1]["args"]["error"] == "boom"
        assert chrome_trace_from_records([]) == []

    def test_write_chrome_trace(self, tmp_path):
        with trace("only"):
            pass
        path = write_chrome_trace(tmp_path / "trace.json", span_records())
        events = json.loads(path.read_text())
        assert events[0]["name"] == "only"


def _mp_worker(ctx_dict: dict) -> list[dict]:
    """Spawn-side worker: adopt the parent's context, do traced work."""
    reset_tracer()
    with use_context(TraceContext.from_dict(ctx_dict)):
        with trace("worker.shard"):
            with trace("worker.step"):
                pass
    return span_records()


class TestMultiprocessingRoundTrip:
    def test_two_workers_merge_into_one_linked_trace(self, tmp_path):
        with trace("serve.request") as root:
            ctx = current_context()
            with multiprocessing.get_context("spawn").Pool(2) as pool:
                buffers = pool.map(_mp_worker, [ctx.to_dict()] * 2)
        merged = merge_span_records(span_records(), *buffers)

        assert len(merged) == 5  # parent root + 2 x (shard + step)
        assert {r["trace_id"] for r in merged} == {root.trace_id}
        assert len({r["pid"] for r in merged}) == 3  # parent + 2 workers
        shards = [r for r in merged if r["name"] == "worker.shard"]
        assert len(shards) == 2
        for shard in shards:
            assert shard["parent_id"] == root.span_id
        steps = {r["parent_id"] for r in merged if r["name"] == "worker.step"}
        assert steps == {s["span_id"] for s in shards}

        path = write_chrome_trace(tmp_path / "merged.json", merged)
        events = json.loads(path.read_text())
        assert len(events) == 5
        assert len({e["pid"] for e in events}) == 3
