"""Deterministic batcher tests: fake clock + seeded arrival schedules.

The serving test contract (TESTING.md): no wall-clock sleeps anywhere —
a :class:`~repro.serve.clock.ManualClock` is advanced explicitly, so
every coalescing decision is a pure, replayable function of the arrival
schedule.  These tests assert *exact batch compositions*, not just
counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import get_registry
from repro.serve import BatcherCore, ManualClock, QueueFullError

pytestmark = pytest.mark.serve


def seeded_schedule(seed: int, count: int = 40):
    """A seeded arrival schedule: (inter-arrival seconds, group key)."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=0.0005, size=count)
    keys = rng.choice(["a", "b"], size=count, p=[0.7, 0.3])
    return list(zip(gaps.tolist(), keys.tolist()))


def replay(schedule, max_batch_size=4, max_wait_ms=2.0):
    """Feed a schedule through a fresh core; collect released batches."""
    clock = ManualClock()
    core = BatcherCore(
        max_batch_size=max_batch_size, max_wait_ms=max_wait_ms, clock=clock
    )
    released = []
    for gap, key in schedule:
        clock.advance(gap)
        released.extend(core.due())
        core.submit(key, payload=None)
        released.extend(core.due())
    if core.pending:
        clock.advance(max_wait_ms / 1000.0)
        released.extend(core.due())
    assert core.pending == 0
    return [(b.key, tuple(b.seqs), b.reason) for b in released]


class TestManualClock:
    def test_advance_and_monotonicity(self):
        clock = ManualClock(10.0)
        assert clock() == 10.0
        clock.advance(2.5)
        clock.sleep(0.5)
        assert clock.now == 13.0
        clock.advance_to(12.0)  # past deadline: no-op
        assert clock.now == 13.0
        clock.advance_to(14.0)
        assert clock.now == 14.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestDeterministicCoalescing:
    def test_exact_batch_composition_fixed_schedule(self):
        """A hand-written schedule closes exactly the expected groups."""
        clock = ManualClock()
        core = BatcherCore(max_batch_size=3, max_wait_ms=10.0, clock=clock)
        # t=0: two "a" arrivals, one "b".
        core.submit("a", "a0")
        core.submit("a", "a1")
        core.submit("b", "b0")
        assert core.due() == []  # nothing full, nothing expired
        # Third "a" fills the group: released immediately, ahead of "b".
        core.submit("a", "a2")
        [full] = core.due()
        assert (full.key, full.seqs, full.reason) == ("a", [0, 1, 3], "full")
        assert full.payloads == ["a0", "a1", "a2"]
        # "b" window opened at t=0: due only once the clock passes 10 ms.
        clock.advance(0.0099)
        assert core.due() == []
        clock.advance(0.0002)
        [windowed] = core.due()
        assert (windowed.key, windowed.seqs, windowed.reason) == ("b", [2], "window")
        assert core.pending == 0

    def test_late_arrivals_ride_the_open_window(self):
        """The window starts at the FIRST request; later ones never extend it."""
        clock = ManualClock()
        core = BatcherCore(max_batch_size=100, max_wait_ms=5.0, clock=clock)
        core.submit("a", 0)
        clock.advance(0.004)
        core.submit("a", 1)  # 1 ms of window left
        clock.advance(0.0011)
        [batch] = core.due()
        assert batch.seqs == [0, 1]
        # Queueing delay is bounded by the window, not restarted per item.
        assert batch.closed_at - batch.opened_at == pytest.approx(0.0051)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_schedule_replays_bitwise(self, seed):
        """Same seed -> byte-identical batch compositions, twice."""
        schedule = seeded_schedule(seed)
        first = replay(schedule)
        second = replay(schedule)
        assert first == second
        assert sum(len(seqs) for _, seqs, _ in first) == len(schedule)

    def test_seeded_schedule_matches_reference_replay(self):
        """Pin one schedule's composition against a straight-line oracle.

        The oracle re-implements the three rules (group by key, close on
        size, close on window) in plain loops; the core must agree batch
        for batch.
        """
        schedule = seeded_schedule(7, count=60)
        max_batch, max_wait_s = 4, 0.002

        expected = []
        open_groups: dict = {}  # key -> (opened_at, [seq])
        now, seq = 0.0, 0

        def expire(now):
            for key in [
                k for k, (at, _) in open_groups.items() if now - at >= max_wait_s
            ]:
                at, seqs = open_groups.pop(key)
                expected.append((key, tuple(seqs), "window"))

        for gap, key in schedule:
            now += gap
            expire(now)
            if key not in open_groups:
                open_groups[key] = (now, [])
            open_groups[key][1].append(seq)
            if len(open_groups[key][1]) >= max_batch:
                _, seqs = open_groups.pop(key)
                expected.append((key, tuple(seqs), "full"))
            seq += 1
        now += max_wait_s
        expire(now)

        assert replay(schedule, max_batch, max_wait_s * 1000.0) == expected


class TestAdmissionControl:
    def test_queue_full_sheds(self):
        clock = ManualClock()
        core = BatcherCore(
            max_batch_size=100, max_wait_ms=50.0, max_pending=3, clock=clock
        )
        get_registry().reset()
        for i in range(3):
            core.submit("a", i)
        with pytest.raises(QueueFullError) as excinfo:
            core.submit("a", 3)
        assert excinfo.value.pending == 3
        assert get_registry().counter("serve.batcher.shed").value == 1
        # Releasing the batch frees the queue again.
        clock.advance(1.0)
        [batch] = core.due()
        assert batch.seqs == [0, 1, 2]
        core.submit("a", 4)
        assert core.pending == 1

    def test_batch_size_histogram_records_releases(self):
        get_registry().reset()
        clock = ManualClock()
        core = BatcherCore(max_batch_size=2, max_wait_ms=1.0, clock=clock)
        core.submit("a", 0)
        core.submit("a", 1)  # full
        core.submit("b", 2)
        clock.advance(1.0)
        core.due()
        histogram = get_registry().histogram("serve.batch_size")
        assert histogram.count == 2
        assert histogram.sum == 3.0


class TestDeadlines:
    def test_next_deadline_tracks_oldest_group(self):
        clock = ManualClock()
        core = BatcherCore(max_batch_size=10, max_wait_ms=2.0, clock=clock)
        assert core.next_deadline() is None
        core.submit("a", 0)
        opened = clock.now
        clock.advance(0.001)
        core.submit("b", 1)
        assert core.next_deadline() == pytest.approx(opened + 0.002)

    def test_full_batch_is_due_immediately(self):
        clock = ManualClock()
        core = BatcherCore(max_batch_size=1, max_wait_ms=60_000.0, clock=clock)
        core.submit("a", 0)
        assert core.next_deadline() == clock.now
        [batch] = core.due()
        assert batch.reason == "full"

    def test_flush_releases_everything(self):
        clock = ManualClock()
        core = BatcherCore(max_batch_size=10, max_wait_ms=60_000.0, clock=clock)
        core.submit("a", 0)
        core.submit("b", 1)
        batches = core.flush()
        assert [(b.key, b.reason) for b in batches] == [
            ("a", "flush"),
            ("b", "flush"),
        ]
        assert core.pending == 0
