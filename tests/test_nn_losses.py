"""Tests for ranking losses: pointwise, pairwise, listwise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, losses


class TestPointwise:
    def test_masked_positions_ignored(self):
        probs = Tensor(np.array([[0.9, 0.0001]]))
        clicks = np.array([[1.0, 1.0]])
        mask = np.array([[True, False]])
        loss = losses.pointwise_bce(probs, clicks, mask=mask).item()
        assert loss == pytest.approx(-np.log(0.9), abs=1e-6)

    def test_logits_variant_matches(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(3, 5))
        clicks = (rng.random((3, 5)) < 0.4).astype(float)
        a = losses.pointwise_bce(Tensor(logits).sigmoid(), clicks).item()
        b = losses.pointwise_bce_with_logits(Tensor(logits), clicks).item()
        assert a == pytest.approx(b, abs=1e-8)


class TestPairwise:
    def test_hinge_zero_when_margin_met(self):
        scores = Tensor(np.array([[5.0, 0.0]]))
        clicks = np.array([[1.0, 0.0]])
        assert losses.pairwise_hinge(scores, clicks).item() == 0.0

    def test_hinge_positive_when_violated(self):
        scores = Tensor(np.array([[0.0, 5.0]]))
        clicks = np.array([[1.0, 0.0]])
        assert losses.pairwise_hinge(scores, clicks).item() == pytest.approx(6.0)

    def test_bpr_decreases_with_separation(self):
        clicks = np.array([[1.0, 0.0]])
        tight = losses.pairwise_bpr(Tensor(np.array([[0.1, 0.0]])), clicks).item()
        wide = losses.pairwise_bpr(Tensor(np.array([[3.0, 0.0]])), clicks).item()
        assert wide < tight

    def test_no_pairs_gives_zero(self):
        scores = Tensor(np.array([[1.0, 2.0]]))
        assert losses.pairwise_bpr(scores, np.array([[1.0, 1.0]])).item() == 0.0
        assert losses.pairwise_hinge(scores, np.array([[0.0, 0.0]])).item() == 0.0

    def test_mask_excludes_items_from_pairs(self):
        scores = Tensor(np.array([[0.0, 5.0, -1.0]]))
        clicks = np.array([[1.0, 0.0, 0.0]])
        mask = np.array([[True, False, True]])  # exclude the violating neg
        loss = losses.pairwise_hinge(scores, clicks, mask=mask).item()
        assert loss == pytest.approx(0.0)

    def test_gradient_direction(self):
        scores = Tensor(np.array([[0.0, 0.0]]), requires_grad=True)
        clicks = np.array([[1.0, 0.0]])
        losses.pairwise_bpr(scores, clicks).backward()
        assert scores.grad[0, 0] < 0  # pushing positive score up
        assert scores.grad[0, 1] > 0


class TestListwise:
    def test_perfect_concentration_low_loss(self):
        scores = Tensor(np.array([[10.0, -10.0, -10.0]]))
        clicks = np.array([[1.0, 0.0, 0.0]])
        assert losses.listwise_softmax_ce(scores, clicks).item() < 1e-6

    def test_uniform_scores_loss_is_log_n(self):
        scores = Tensor(np.zeros((1, 4)))
        clicks = np.array([[1.0, 0.0, 0.0, 0.0]])
        loss = losses.listwise_softmax_ce(scores, clicks).item()
        assert loss == pytest.approx(np.log(4.0), abs=1e-9)

    def test_no_clicks_contributes_zero(self):
        scores = Tensor(np.zeros((1, 4)))
        clicks = np.zeros((1, 4))
        assert losses.listwise_softmax_ce(scores, clicks).item() == 0.0

    def test_multiple_clicks_normalized(self):
        scores = Tensor(np.zeros((1, 2)))
        clicks = np.array([[1.0, 1.0]])
        loss = losses.listwise_softmax_ce(scores, clicks).item()
        assert loss == pytest.approx(np.log(2.0), abs=1e-9)

    def test_attention_rank_alias(self):
        scores = Tensor(np.array([[1.0, 0.0]]))
        clicks = np.array([[1.0, 0.0]])
        a = losses.attention_rank_loss(scores, clicks).item()
        b = losses.listwise_softmax_ce(scores, clicks).item()
        assert a == b
