"""Supervisor tests: sans-io state machine, then the real worker pool.

The :class:`SupervisorCore` suite runs on a :class:`ManualClock` — no
sleeps, no subprocesses — and pins the liveness/budget/backoff contract.
The :class:`WorkerPool` suite spawns real (tiny) worker processes and
proves the requeue/restart/degrade paths under parent-side chaos, where
``plan.fires()`` is auditable against the retry and restart counters.
"""

from __future__ import annotations

import pytest

from repro.dist import (
    DistError,
    RestartPolicy,
    SupervisorCore,
    WorkerPool,
)
from repro.dist.supervisor import picklable_error
from repro.obs import MemorySink, RunLogger, get_registry, set_run_logger
from repro.resilience import (
    FaultSpec,
    InjectedFault,
    RetryBudgetExceeded,
    RetryPolicy,
    chaos,
)
from repro.serve.clock import ManualClock

pytestmark = pytest.mark.dist

NO_SLEEP = lambda seconds: None  # noqa: E731 - dist tests never really wait


def _core(world_size=2, clock=None, **policy_kwargs):
    clock = clock if clock is not None else ManualClock()
    return (
        SupervisorCore(world_size, RestartPolicy(**policy_kwargs), clock),
        clock,
    )


class TestRestartPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartPolicy(heartbeat_timeout_s=0.0)

    def test_defaults_reuse_retry_machinery(self):
        policy = RestartPolicy()
        assert isinstance(policy.task_retry, RetryPolicy)
        assert policy.task_retry.classify(OSError()) == "retryable"
        assert policy.task_retry.classify(ValueError()) == "fatal"


class TestSupervisorCore:
    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            SupervisorCore(0)

    def test_overdue_tracks_heartbeats_on_manual_clock(self):
        core, clock = _core(world_size=3, heartbeat_timeout_s=10.0)
        assert core.overdue() == []
        clock.advance(9.0)
        core.beat(1)
        clock.advance(2.0)  # ranks 0/2 are now 11s stale, rank 1 only 2s
        assert core.overdue() == [0, 2]
        core.beat(0)
        core.beat(2)
        assert core.overdue() == []

    def test_heartbeat_faultpoint_drops_the_beat(self):
        core, clock = _core(heartbeat_timeout_s=5.0)
        clock.advance(6.0)
        with chaos(FaultSpec("dist.heartbeat", times=1)):
            assert core.beat(0) is False  # lossy channel: beat swallowed
            assert core.beat(0) is True
        assert core.overdue() == [1]  # rank 0 recovered on the second beat

    def test_restart_then_degrade_budget(self):
        core, _ = _core(max_restarts=1)
        first = core.on_death(0)
        assert first.action == "restart"
        assert core.restarts[0] == 1 and 0 in core.live
        second = core.on_death(0)
        assert second.action == "degrade"
        assert core.live == {1} and core.removed == {0}
        assert core.total_restarts == 1
        with pytest.raises(ValueError):
            core.on_death(0)  # not live anymore

    def test_degrade_updates_gauge_and_runlog(self):
        sink = MemorySink()
        previous = set_run_logger(RunLogger(sink))
        try:
            core, _ = _core(max_restarts=0)
            assert core.on_death(1).action == "degrade"
        finally:
            set_run_logger(previous)
        assert get_registry().gauge("dist.live_workers").value == 1.0
        events = [r for r in sink.records if r["event"] == "dist.degraded"]
        assert len(events) == 1
        assert events[0]["rank"] == 1 and events[0]["live_workers"] == 1

    def test_backoff_envelope_is_decorrelated_jitter(self):
        base, cap = 0.01, 0.5
        core, _ = _core(
            world_size=1, max_restarts=50, base_delay=base, max_delay=cap
        )
        previous = base
        for _ in range(20):
            decision = core.on_death(0)
            assert decision.action == "restart"
            assert base <= decision.delay <= cap
            assert decision.delay <= max(cap, 3.0 * previous)
            previous = decision.delay

    def test_restart_grants_fresh_grace_period(self):
        core, clock = _core(heartbeat_timeout_s=5.0, max_restarts=3)
        clock.advance(100.0)
        assert core.overdue() == [0, 1]
        core.on_death(0)  # restart stamps a fresh beat at t=100
        assert core.overdue() == [1]


class TestPicklableError:
    def test_round_trippable_errors_pass_through(self):
        error = ValueError("bad shape")
        assert picklable_error(error) is error

    def test_unpicklable_error_substituted(self):
        # RetryBudgetExceeded's 3-arg __init__ breaks naive unpickling —
        # exactly the class a worker would plausibly ship home.
        error = RetryBudgetExceeded("site", 3, 1.5)
        substitute = picklable_error(error)
        assert isinstance(substitute, DistError)
        assert "RetryBudgetExceeded" in str(substitute)


# ----------------------------------------------------------------------
# WorkerPool: real processes, tiny tasks
# ----------------------------------------------------------------------
def _square(payload):
    return payload * payload


def _always_oserror(payload):
    raise OSError(f"disk on fire for {payload}")


def _always_valueerror(payload):
    raise ValueError("programming error")


def _pool(num_workers=2, **policy_kwargs):
    return WorkerPool(
        num_workers=num_workers,
        fn=policy_kwargs.pop("fn", _square),
        policy=RestartPolicy(base_delay=0.0, max_delay=0.0, **policy_kwargs),
        site="dist.task",
        sleep=NO_SLEEP,
        poll_s=0.01,
    )


class TestWorkerPool:
    def test_happy_path_returns_results_in_task_order(self):
        with _pool() as pool:
            assert pool.run(list(range(7))) == [i * i for i in range(7)]
            assert pool.core.total_restarts == 0

    def test_dispatch_kill_requeues_and_restarts(self):
        retries = get_registry().counter("resilience.retries", site="dist.task")
        restarts = get_registry().counter("dist.worker_restarts")
        before = (retries.value, restarts.value)
        with chaos(FaultSpec("dist.task", kind="kill", times=1)) as plan:
            with _pool() as pool:
                assert pool.run([1, 2, 3, 4]) == [1, 4, 9, 16]
                assert pool.core.total_restarts == 1
            fires = plan.fires("dist.task")
        assert fires == 1
        assert retries.value - before[0] == fires
        assert restarts.value - before[1] == fires

    def test_dispatch_error_spec_is_a_transient_requeue(self):
        retries = get_registry().counter("resilience.retries", site="dist.task")
        before = retries.value
        with chaos(FaultSpec("dist.task", times=2)) as plan:
            with _pool() as pool:
                assert pool.run([5, 6]) == [25, 36]
                assert pool.core.total_restarts == 0  # nobody died
            assert plan.fires("dist.task") == 2
        assert retries.value - before == 2

    def test_fatal_worker_error_aborts_classified(self):
        with _pool(fn=_always_valueerror) as pool:
            with pytest.raises(DistError) as excinfo:
                pool.run([1])
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_retryable_worker_error_exhausts_task_budget(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0)
        with _pool(fn=_always_oserror, task_retry=policy) as pool:
            with pytest.raises(DistError) as excinfo:
                pool.run([1])
        assert "attempt" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_budget_exhaustion_degrades_then_survivor_finishes(self):
        with chaos(FaultSpec("dist.task", kind="kill", times=1)):
            with _pool(max_restarts=0) as pool:
                assert sorted(pool.run([2, 3, 4])) == [4, 9, 16]
                assert len(pool.core.removed) == 1
                assert len(pool.core.live) == 1

    def test_whole_fleet_gone_raises(self):
        with chaos(FaultSpec("dist.task", kind="kill", times=None)):
            with _pool(max_restarts=0, task_retry=RetryPolicy(max_attempts=10)) as pool:
                with pytest.raises(DistError) as excinfo:
                    pool.run([1, 2, 3])
        assert "no workers left" in str(excinfo.value)

    def test_workers_ship_span_records_home(self):
        with _pool() as pool:
            pool.run([1, 2])
        names = {record["name"] for record in pool.span_buffer}
        assert any(name.startswith("dist.pool.worker:") for name in names)
        assert any(name.startswith("dist.pool.task:") for name in names)
