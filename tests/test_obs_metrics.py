"""Tests for the metrics registry: quantiles, labels, cardinality, reset."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry, get_registry, reset_registry
from repro.obs.metrics import Histogram


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("events").inc(-1)

    def test_thread_safety_exact_total(self):
        counter = MetricsRegistry().counter("events")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_and_adjust(self):
        gauge = MetricsRegistry().gauge("loss")
        gauge.set(0.5)
        assert gauge.value == 0.5
        gauge.inc(0.25)
        gauge.dec(0.5)
        assert gauge.value == pytest.approx(0.25)


class TestHistogram:
    def test_quantiles_uniform(self):
        hist = Histogram("t")
        for v in range(101):  # 0..100
            hist.observe(v)
        assert hist.p50 == pytest.approx(50.0)
        assert hist.p95 == pytest.approx(95.0)
        assert hist.p99 == pytest.approx(99.0)
        assert hist.quantile(0.0) == 0.0
        assert hist.quantile(1.0) == 100.0

    def test_quantile_interpolates(self):
        hist = Histogram("t")
        hist.observe(0.0)
        hist.observe(10.0)
        assert hist.p50 == pytest.approx(5.0)

    def test_mean_count_sum(self):
        hist = Histogram("t")
        hist.observe(1.0)
        hist.observe(3.0)
        assert hist.count == 2
        assert hist.sum == pytest.approx(4.0)
        assert hist.mean == pytest.approx(2.0)

    def test_empty(self):
        hist = Histogram("t")
        assert hist.p95 == 0.0
        assert hist.mean == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Histogram("t").quantile(1.5)

    def test_max_samples_downsamples_but_keeps_exact_count(self):
        import random

        hist = Histogram("t", max_samples=64)
        values = list(range(1000))
        random.Random(0).shuffle(values)
        for v in values:
            hist.observe(float(v))
        assert hist.count == 1000
        assert hist.sum == pytest.approx(sum(range(1000)))
        assert len(hist._sorted) <= 64
        # Quantiles stay approximately right after reservoir halving
        # (every-other decimation of the sorted list is quantile-neutral
        # for randomly ordered arrivals; monotone arrivals skew recent).
        assert hist.p50 == pytest.approx(500.0, rel=0.25)


class TestRegistry:
    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("ops", op="add")
        b = registry.counter("ops", op="mul")
        a.inc()
        assert a is not b
        assert b.value == 0
        # Same labels (any order) return the cached series.
        assert registry.counter("ops", op="add") is a

    def test_label_cardinality_guard_routes_to_overflow(self):
        registry = MetricsRegistry(max_series_per_metric=5)
        for i in range(5):
            registry.counter("unbounded", request=i).inc()
        # Past the cap, new label sets all share one overflow series
        # instead of raising — serving code must not crash on an
        # unbounded label.
        overflow_a = registry.counter("unbounded", request=999)
        overflow_b = registry.counter("unbounded", request=12345)
        assert overflow_a is overflow_b
        overflow_a.inc()
        snapshot = {
            tuple(sorted(s["labels"].items())): s
            for s in registry.collect()
            if s["name"] == "unbounded"
        }
        assert snapshot[(("overflow", "true"),)]["value"] == 1
        # The drop is itself counted, labeled by the offending metric.
        dropped = registry.counter("obs.dropped_series", metric="unbounded")
        assert dropped.value == 2
        # Existing (pre-cap) series keep resolving to their own series.
        assert registry.counter("unbounded", request=0).value == 1

    def test_cardinality_overflow_logs_once(self, caplog):
        import logging

        registry = MetricsRegistry(max_series_per_metric=2)
        with caplog.at_level(logging.WARNING, logger="repro.obs.metrics"):
            for i in range(10):
                registry.counter("noisy", request=i)
        warnings = [
            r for r in caplog.records if "max_series_per_metric" in r.message
        ]
        assert len(warnings) == 1

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_collect_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g", model="rapid").set(1.5)
        registry.histogram("h").observe(3.0)
        snapshot = {s["name"]: s for s in registry.collect()}
        assert snapshot["c"]["value"] == 2
        assert snapshot["g"]["labels"] == {"model": "rapid"}
        assert snapshot["h"]["count"] == 1
        assert snapshot["h"]["p95"] == pytest.approx(3.0)

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.counter("c").value == 0

    def test_global_registry_roundtrip(self):
        reset_registry()
        get_registry().counter("test.global").inc()
        assert get_registry().counter("test.global").value == 1
        reset_registry()
        assert get_registry().counter("test.global").value == 0
