"""Properties of the Theorem 5.1 bound and the regret accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory import theoretical_bound
from repro.theory.regret import run_regret_experiment


class TestBoundProperties:
    @given(
        st.integers(2, 2000),
        st.integers(2, 30),
        st.integers(2, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_bound_positive_and_increasing(self, n, q0, k):
        bound = theoretical_bound(n, q0=q0, k=k, gamma=0.3, p_v=0.1, exploration=1.0)
        assert (bound > 0).all()
        assert (np.diff(bound) >= 0).all()

    def test_bound_monotone_in_dimension(self):
        small = theoretical_bound(100, q0=5, k=5, gamma=0.3, p_v=0.1, exploration=1.0)
        large = theoretical_bound(100, q0=20, k=5, gamma=0.3, p_v=0.1, exploration=1.0)
        assert (large >= small).all()

    def test_bound_monotone_in_k(self):
        small = theoretical_bound(100, q0=10, k=3, gamma=0.3, p_v=0.1, exploration=1.0)
        large = theoretical_bound(100, q0=10, k=8, gamma=0.3, p_v=0.1, exploration=1.0)
        assert (large >= small).all()

    def test_bound_inverse_in_gamma(self):
        tight = theoretical_bound(100, q0=10, k=5, gamma=0.6, p_v=0.1, exploration=1.0)
        loose = theoretical_bound(100, q0=10, k=5, gamma=0.2, p_v=0.1, exploration=1.0)
        assert (loose >= tight).all()


class TestRegretAccounting:
    @pytest.fixture(scope="class")
    def result(self):
        return run_regret_experiment(horizon=300, seed=1, exploration=0.5)

    def test_cumulative_arrays_aligned(self, result):
        assert len(result.raw_regret) == len(result.cumulative_regret) == 300
        assert len(result.bound) == 300

    def test_raw_regret_matches_per_round_sums(self, result):
        reconstructed = np.cumsum(
            result.per_round_oracle - result.per_round_learner
        )
        assert np.allclose(reconstructed, result.raw_regret)

    def test_scaled_regret_below_raw(self, result):
        """Dividing the learner's utility by gamma < 1 inflates it, so the
        gamma-scaled regret is always <= the raw regret."""
        assert (result.cumulative_regret <= result.raw_regret + 1e-9).all()

    def test_utilities_in_unit_interval(self, result):
        assert ((result.per_round_oracle >= 0) & (result.per_round_oracle <= 1)).all()
        assert (
            (result.per_round_learner >= 0) & (result.per_round_learner <= 1)
        ).all()
