"""Differential-testing engine: comparisons, kernel cases, bug localization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.kernels import ORACLE_CASES
from repro.nn.tensor import Tensor
from repro.testing import (
    DivergenceError,
    assert_equivalent,
    check_all_kernels,
    check_kernel,
    compare_arrays,
    differential_check,
    finite_difference_grad,
    max_ulp_diff,
)


class TestMaxUlpDiff:
    def test_identical_arrays_are_zero_ulp(self):
        a = np.random.default_rng(0).normal(size=(4, 5))
        assert max_ulp_diff(a, a.copy()) == 0.0

    def test_adjacent_floats_are_one_ulp(self):
        a = np.array([1.0])
        b = np.nextafter(a, np.inf)
        assert max_ulp_diff(a, b) == 1.0

    def test_sign_straddle_counts_through_zero(self):
        # -tiny -> -0.0 -> +0.0 -> +tiny: the ordering keeps the two
        # zeros distinct, so the straddle is three steps.
        tiny = np.nextafter(np.array([0.0]), np.inf)
        assert max_ulp_diff(-tiny, tiny) == 3.0

    def test_one_ulp_stays_exact_for_large_magnitudes(self):
        a = np.array([1e300])
        b = np.nextafter(a, np.inf)
        assert max_ulp_diff(a, b) == 1.0

    def test_nan_in_one_array_is_inf(self):
        a = np.array([1.0, np.nan])
        b = np.array([1.0, 2.0])
        assert max_ulp_diff(a, b) == float("inf")

    def test_matching_nans_are_allowed(self):
        a = np.array([np.nan, 3.0])
        assert max_ulp_diff(a, a.copy()) == 0.0

    def test_shape_mismatch_is_inf(self):
        assert max_ulp_diff(np.zeros(3), np.zeros(4)) == float("inf")


class TestCompareArrays:
    def test_equal_within_tolerance_passes(self):
        a = np.array([1.0, 2.0])
        row = compare_arrays("x", a, a + 1e-13, rtol=1e-9, atol=1e-12)
        assert row.ok

    def test_divergence_beyond_tolerance_fails(self):
        row = compare_arrays("x", np.array([1.0]), np.array([1.1]), rtol=1e-9)
        assert not row.ok
        assert row.max_abs_err == pytest.approx(0.1)

    def test_none_matches_none_only(self):
        assert compare_arrays("x", None, None).ok
        assert not compare_arrays("x", np.zeros(2), None).ok

    def test_nan_on_one_side_fails_even_with_loose_tolerance(self):
        row = compare_arrays(
            "x", np.array([np.nan]), np.array([0.0]), rtol=1e9, atol=1e9
        )
        assert not row.ok


class TestFiniteDifference:
    def test_matches_analytic_gradient_of_quadratic(self):
        arrays = [np.array([1.0, -2.0, 0.5])]

        def fn(x):
            return float((x**2).sum())

        grad = finite_difference_grad(fn, arrays, 0)
        np.testing.assert_allclose(grad, 2.0 * arrays[0], rtol=1e-6)


class TestDifferentialCheck:
    def test_well_behaved_function_passes(self):
        rng = np.random.default_rng(1)

        def fn(x, w):
            return (x @ w).tanh().sum(axis=1)

        report = differential_check(
            fn,
            (rng.normal(size=(3, 4)), rng.normal(size=(4, 2))),
            name="tanh-matmul",
            input_names=("x", "w"),
        )
        assert report.passed, report.format()
        quantities = [row.quantity for row in report.rows]
        assert "grad[x] fused-vs-composed" in quantities
        assert "grad[w] fused-vs-fd" in quantities

    def test_assert_equivalent_raises_with_structured_message(self):
        def fn(x):
            # Gradient depends on the dispatch-path flag: the two paths
            # genuinely disagree, which is exactly what the oracle exists
            # to catch.
            from repro.nn.kernels import fused_enabled

            return x * (2.0 if fused_enabled() else 3.0)

        with pytest.raises(DivergenceError) as excinfo:
            assert_equivalent(fn, (np.ones((2, 2)),), name="path-dependent")
        message = str(excinfo.value)
        assert "path-dependent" in message
        assert "FAIL" in message


class TestKernelOracleCases:
    def test_all_four_fused_kernels_are_registered(self):
        assert {
            "lstm_cell_fused",
            "gru_cell_fused",
            "lstm_scan_fused",
            "gru_scan_fused",
        } <= set(ORACLE_CASES)

    @pytest.mark.parametrize("name", sorted(ORACLE_CASES))
    def test_registered_kernel_passes_oracle(self, name):
        report = check_kernel(name, seed=0)
        assert report.passed, report.format()

    def test_check_all_kernels_covers_registry(self):
        reports = check_all_kernels(seed=1)
        assert set(reports) == set(ORACLE_CASES)
        assert all(r.passed for r in reports.values())

    def test_unknown_kernel_raises_keyerror(self):
        with pytest.raises(KeyError, match="no oracle case"):
            check_kernel("nonexistent_kernel")


class TestInjectedBugLocalization:
    """The acceptance story: a flipped sign in a fused backward is caught
    by the oracle and attributed to the failing op and quantities."""

    def test_flipped_sign_in_lstm_backward_is_localized(self, monkeypatch):
        real = Tensor.__dict__["lstm_cell_fused"].__func__

        def buggy(*args, **kwargs):
            h, c = real(*args, **kwargs)
            inner = h._backward
            if inner is not None:

                def flipped(grad):
                    inner(-grad)

                h._backward = flipped
            return h, c

        monkeypatch.setattr(Tensor, "lstm_cell_fused", staticmethod(buggy))

        report = check_kernel("lstm_cell_fused", seed=0)
        assert not report.passed
        # Forward is untouched by the injected bug; only gradients diverge.
        forward_rows = [r for r in report.rows if r.quantity.startswith("forward")]
        assert all(r.ok for r in forward_rows)
        failing = {r.quantity for r in report.failures}
        assert "grad[h_prev] fused-vs-composed" in failing
        assert "grad[h_prev] fused-vs-fd" in failing
        # Every other kernel still passes: the report localizes the bug.
        assert check_kernel("gru_cell_fused", seed=0).passed
