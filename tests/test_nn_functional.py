"""Tests for repro.nn.functional: activations, losses, masked softmax."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F


class TestMaskedSoftmax:
    def test_masked_positions_get_zero(self):
        x = Tensor(np.zeros((2, 4)))
        mask = np.array([[True, True, False, False], [True, True, True, True]])
        out = F.masked_softmax(x, mask).numpy()
        assert np.allclose(out[0], [0.5, 0.5, 0.0, 0.0])
        assert np.allclose(out[1], 0.25)

    def test_fully_masked_row_is_zero_not_nan(self):
        x = Tensor(np.ones((1, 3)))
        mask = np.zeros((1, 3), dtype=bool)
        out = F.masked_softmax(x, mask).numpy()
        assert np.allclose(out, 0.0)
        assert not np.isnan(out).any()

    def test_matches_plain_softmax_when_unmasked(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 5))
        out = F.masked_softmax(Tensor(x), np.ones((3, 5), dtype=bool)).numpy()
        assert np.allclose(out, Tensor(x).softmax(axis=-1).numpy())

    def test_gradient_flows_through_unmasked(self):
        x = Tensor(np.zeros((1, 3)), requires_grad=True)
        mask = np.array([[True, True, False]])
        F.masked_softmax(x, mask)[0, 0].reshape(1).sum().backward()
        assert x.grad is not None
        assert x.grad[0, 2] == 0.0


class TestBinaryCrossEntropy:
    def test_perfect_prediction_near_zero_loss(self):
        probs = Tensor(np.array([0.999999, 0.000001]))
        loss = F.binary_cross_entropy(probs, np.array([1.0, 0.0]))
        assert loss.item() < 1e-4

    def test_bce_probability_vs_logits_agree(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 3))
        targets = (rng.random((4, 3)) < 0.5).astype(float)
        a = F.binary_cross_entropy(Tensor(logits).sigmoid(), targets).item()
        b = F.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        assert a == pytest.approx(b, abs=1e-8)

    def test_weighted_ignores_masked_entries(self):
        probs = Tensor(np.array([[0.9, 0.001]]))
        targets = np.array([[1.0, 1.0]])
        weight = np.array([[1.0, 0.0]])  # second entry (terrible) masked out
        loss = F.binary_cross_entropy(probs, targets, weight=weight).item()
        assert loss == pytest.approx(-np.log(0.9), abs=1e-9)

    def test_logits_extreme_values_stable(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        loss = F.binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bce_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        probs = Tensor(rng.random(8))
        targets = (rng.random(8) < 0.5).astype(float)
        assert F.binary_cross_entropy(probs, targets).item() >= 0.0


class TestMiscFunctional:
    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert F.mse_loss(pred, np.array([1.0, 4.0])).item() == pytest.approx(2.0)

    def test_dropout_identity_in_eval(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10)))
        out = F.dropout(x, 0.5, rng, training=False)
        assert np.array_equal(out.numpy(), x.numpy())

    def test_dropout_scales_in_train(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, rng, training=True).numpy()
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert abs(out.mean() - 1.0) < 0.05

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.5, np.random.default_rng(0), True)

    def test_activation_wrappers(self):
        x = np.array([-1.0, 0.0, 1.0])
        assert np.allclose(F.relu(Tensor(x)).numpy(), [0, 0, 1])
        assert np.allclose(F.tanh(Tensor(x)).numpy(), np.tanh(x))
        assert np.allclose(
            F.sigmoid(Tensor(x)).numpy(), 1 / (1 + np.exp(-x))
        )
        assert np.allclose(
            F.log_softmax(Tensor(x)).numpy(),
            np.log(F.softmax(Tensor(x)).numpy()),
        )
