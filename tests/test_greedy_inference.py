"""Tests for the greedy sequential inference extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RapidConfig, RapidReranker, TrainConfig, make_rapid_variant
from repro.data import RankingRequest, build_batch


@pytest.fixture(scope="module")
def setup(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = []
    for _ in range(12):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=8, replace=False)
        clicks = (rng.random(8) < 0.3).astype(float)
        requests.append(
            RankingRequest(user, items, rng.normal(size=8), clicks=clicks)
        )
    batch = build_batch(requests, world.catalog, world.population, histories)
    config = RapidConfig(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=8,
        seed=0,
    )
    return world, histories, requests, batch, config


class TestGreedyRerank:
    def test_valid_permutations(self, setup):
        _, _, _, batch, config = setup
        model = make_rapid_variant("rapid-pro", config)
        perm = model.greedy_rerank(batch)
        for row in perm:
            assert sorted(row.tolist()) == list(range(batch.list_length))

    def test_first_pick_matches_sort_inference(self, setup):
        """With an empty prefix the greedy and sort scores share the same
        diversity context only for the greedy top pick's gain computation,
        but the greedy first pick maximizes the head score with full
        first-position gains."""
        _, _, _, batch, config = setup
        model = make_rapid_variant("rapid-pro", config)
        perm = model.greedy_rerank(batch)
        assert perm.shape == (batch.batch_size, batch.list_length)

    def test_requires_diversity_branch(self, setup):
        _, _, _, batch, config = setup
        model = make_rapid_variant("rapid-rnn", config)
        with pytest.raises(RuntimeError):
            model.greedy_rerank(batch)

    def test_deterministic(self, setup):
        _, _, _, batch, config = setup
        model = make_rapid_variant("rapid-pro", config)
        assert np.array_equal(model.greedy_rerank(batch), model.greedy_rerank(batch))

    def test_padded_positions_last(self, setup):
        world, histories, _, _, config = setup
        short = RankingRequest(0, np.arange(3), np.zeros(3))
        longer = RankingRequest(1, np.arange(6), np.zeros(6))
        batch = build_batch(
            [short, longer], world.catalog, world.population, histories
        )
        model = make_rapid_variant("rapid-pro", config)
        perm = model.greedy_rerank(batch)
        assert set(perm[0][-3:].tolist()) == {3, 4, 5}


def _reference_greedy(model, batch):
    """Per-row greedy construction (the pre-vectorization implementation)."""
    from repro import nn
    from repro.nn import Tensor

    was_training = model.training
    model.eval()
    try:
        with nn.no_grad():
            relevance = model.relevance(batch).numpy()
            theta = model.diversity.preference_distribution(batch).numpy()
    finally:
        model.train(was_training)
    batch_size, length, _ = relevance.shape
    m = model.config.num_topics
    permutations = np.empty((batch_size, length), dtype=np.int64)
    for row in range(batch_size):
        valid = np.flatnonzero(batch.mask[row])
        prefix_complement = np.ones(m)
        chosen: list[int] = []
        remaining = list(valid)
        while remaining:
            gains = batch.coverage[row, remaining] * prefix_complement
            delta = gains * theta[row]
            features = Tensor(
                np.concatenate([relevance[row, remaining], delta], axis=1)[
                    None, :, :
                ]
            )
            with nn.no_grad():
                scores = model.head.inference_scores(features).numpy()[0]
            pick = remaining[int(np.argmax(scores))]
            chosen.append(pick)
            remaining.remove(pick)
            prefix_complement = prefix_complement * (1.0 - batch.coverage[row, pick])
        invalid = np.flatnonzero(~batch.mask[row])
        permutations[row] = np.concatenate([chosen, invalid])
    return permutations


class TestVectorizedGreedyEquivalence:
    def test_matches_per_row_reference(self, setup):
        _, _, _, batch, config = setup
        model = make_rapid_variant("rapid-pro", config)
        assert np.array_equal(model.greedy_rerank(batch), _reference_greedy(model, batch))

    def test_matches_reference_with_padding(self, setup):
        world, histories, _, _, config = setup
        requests = [
            RankingRequest(0, np.arange(3), np.zeros(3)),
            RankingRequest(1, np.arange(7), np.zeros(7)),
            RankingRequest(2, np.arange(5), np.zeros(5)),
        ]
        batch = build_batch(requests, world.catalog, world.population, histories)
        model = make_rapid_variant("rapid-pro", config)
        assert np.array_equal(model.greedy_rerank(batch), _reference_greedy(model, batch))


class TestGreedyReranker:
    def test_reranker_dispatch(self, setup):
        world, histories, requests, batch, config = setup
        reranker = RapidReranker(
            config,
            "rapid-pro",
            TrainConfig(epochs=1, batch_size=8),
            inference="greedy",
        )
        reranker.fit(requests, world.catalog, world.population, histories)
        assert reranker.name == "rapid-pro-greedy"
        perm = reranker.rerank(batch)
        for row in perm:
            assert sorted(row.tolist()) == list(range(batch.list_length))

    def test_invalid_inference_mode(self, setup):
        _, _, _, _, config = setup
        with pytest.raises(ValueError):
            RapidReranker(config, inference="beam")

    def test_factory_builds_greedy_variant(self, tiny_bundle):
        from repro.eval import make_reranker

        reranker = make_reranker("rapid-pro-greedy", tiny_bundle)
        assert reranker.inference == "greedy"
        assert reranker.variant == "rapid-pro"
