"""Metric tests: click@k, ndcg@k, div@k, satis@k, rev@k, significance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    clicks_at_k,
    div_at_k,
    is_significant_improvement,
    ndcg_at_k,
    paired_t_test,
    revenue_at_k,
    satis_at_k,
    topic_coverage,
)


class TestClicksAtK:
    def test_counts_top_k(self):
        clicks = [np.array([1, 0, 1, 1]), np.array([0, 0, 0, 0])]
        assert clicks_at_k(clicks, 2) == pytest.approx(0.5)
        assert clicks_at_k(clicks, 4) == pytest.approx(1.5)

    def test_accepts_matrix(self):
        clicks = np.array([[1.0, 1.0], [0.0, 1.0]])
        assert clicks_at_k(clicks, 2) == pytest.approx(1.5)

    def test_k_beyond_length_uses_all(self):
        assert clicks_at_k([np.array([1.0, 1.0])], 10) == pytest.approx(2.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            clicks_at_k([np.array([1.0])], 0)

    @given(st.integers(0, 2**31 - 1), st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_k(self, seed, k):
        rng = np.random.default_rng(seed)
        clicks = [rng.random(12) for _ in range(4)]
        assert clicks_at_k(clicks, k) <= clicks_at_k(clicks, k + 1) + 1e-12


class TestNdcgAtK:
    def test_perfect_ranking_is_one(self):
        rel = [np.array([1.0, 1.0, 0.0, 0.0])]
        assert ndcg_at_k(rel, 2) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        rel = [np.array([0.0, 0.0, 1.0, 1.0])]
        assert ndcg_at_k(rel, 2) == 0.0

    def test_no_relevance_gives_zero(self):
        assert ndcg_at_k([np.zeros(4)], 2) == 0.0

    def test_permutation_improves(self):
        bad = [np.array([0.0, 0.2, 0.9, 0.8])]
        good = [np.array([0.9, 0.8, 0.2, 0.0])]
        assert ndcg_at_k(good, 4) > ndcg_at_k(bad, 4)

    def test_graded_relevance(self):
        rel = [np.array([0.5, 1.0])]
        discounts = 1.0 / np.log2([2.0, 3.0])
        expected = (0.5 * discounts[0] + 1.0 * discounts[1]) / (
            1.0 * discounts[0] + 0.5 * discounts[1]
        )
        assert ndcg_at_k(rel, 2) == pytest.approx(expected)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_bounded_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        rel = [rng.random(8) for _ in range(3)]
        value = ndcg_at_k(rel, 5)
        assert 0.0 <= value <= 1.0 + 1e-12


class TestDivAtK:
    def test_topic_coverage_formula(self):
        coverage = np.array([[0.5, 0.0], [0.5, 1.0]])
        assert np.allclose(topic_coverage(coverage), [0.75, 1.0])

    def test_disjoint_topics_add(self):
        lists = [np.eye(3)]
        assert div_at_k(lists, 3) == pytest.approx(3.0)

    def test_duplicate_topics_saturate(self):
        lists = [np.array([[1.0, 0.0], [1.0, 0.0]])]
        assert div_at_k(lists, 2) == pytest.approx(1.0)

    def test_monotone_in_k(self):
        rng = np.random.default_rng(0)
        lists = [rng.random((6, 4)) for _ in range(3)]
        assert div_at_k(lists, 2) <= div_at_k(lists, 5)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            topic_coverage(np.zeros(3))


class TestSatisAtK:
    def test_formula(self):
        phi = [np.array([0.5, 0.5])]
        eps = np.array([0.4, 0.4])
        assert satis_at_k(phi, eps, 2) == pytest.approx(1 - 0.8 * 0.8)

    def test_per_request_termination(self):
        phi = [np.array([1.0]), np.array([1.0])]
        eps = [np.array([0.2]), np.array([0.6])]
        assert satis_at_k(phi, eps, 1) == pytest.approx(0.4)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            satis_at_k([np.array([0.5])], np.array([0.5]), 0)


class TestRevenueAtK:
    def test_bid_weighting(self):
        clicks = [np.array([1.0, 0.0, 1.0])]
        bids = [np.array([2.0, 5.0, 3.0])]
        assert revenue_at_k(clicks, bids, 3) == pytest.approx(5.0)
        assert revenue_at_k(clicks, bids, 1) == pytest.approx(2.0)

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            revenue_at_k([np.ones(2)], [], 1)


class TestSignificance:
    def test_detects_clear_improvement(self):
        rng = np.random.default_rng(0)
        base = rng.normal(0.0, 1.0, size=200)
        better = base + 0.5
        t_stat, p_value = paired_t_test(better, base)
        assert t_stat > 0
        assert p_value < 0.05
        assert is_significant_improvement(better, base)

    def test_identical_scores_not_significant(self):
        scores = np.ones(50)
        t_stat, p_value = paired_t_test(scores, scores)
        assert p_value == 1.0
        assert not is_significant_improvement(scores, scores)

    def test_worse_candidate_not_significant(self):
        rng = np.random.default_rng(1)
        base = rng.normal(size=100)
        assert not is_significant_improvement(base - 1.0, base)

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            paired_t_test(np.ones(3), np.ones(4))

    def test_tiny_samples_handled(self):
        t_stat, p_value = paired_t_test(np.array([1.0]), np.array([0.0]))
        assert p_value == 1.0
