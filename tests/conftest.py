"""Shared fixtures: tiny worlds, experiment bundles, and the golden store."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.trainer import TrainConfig
from repro.data import make_appstore_world, make_movielens_world, make_taobao_world
from repro.eval import ExperimentConfig, prepare_bundle

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json snapshots instead of comparing",
    )


@pytest.fixture(scope="session")
def golden_store(request):
    from repro.testing import GoldenStore

    return GoldenStore(GOLDEN_DIR, update=request.config.getoption("--update-golden"))


@pytest.fixture(autouse=True)
def _isolate_global_rng():
    """Insulate tests from each other's use of the legacy global RNG.

    Several components accept seeds but some tests reach for np.random
    directly; saving/restoring the global state keeps test outcomes
    independent of execution order (and of -m / -k selection).
    """
    state = np.random.get_state()
    yield
    np.random.set_state(state)


@pytest.fixture(scope="session")
def taobao_world():
    return make_taobao_world("tiny", seed=0)


@pytest.fixture(scope="session")
def movielens_world():
    return make_movielens_world("tiny", seed=0)


@pytest.fixture(scope="session")
def appstore_world():
    return make_appstore_world("tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_config():
    return ExperimentConfig(
        dataset="taobao",
        scale="tiny",
        tradeoff=0.5,
        list_length=10,
        num_train_requests=120,
        num_test_requests=40,
        ranker_interactions=800,
        hidden=8,
        train=TrainConfig(epochs=2, batch_size=32),
        seed=0,
    )


@pytest.fixture(scope="session")
def tiny_bundle(tiny_config):
    return prepare_bundle(tiny_config)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
