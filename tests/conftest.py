"""Shared fixtures: tiny worlds and experiment bundles (session-scoped)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trainer import TrainConfig
from repro.data import make_appstore_world, make_movielens_world, make_taobao_world
from repro.eval import ExperimentConfig, prepare_bundle


@pytest.fixture(scope="session")
def taobao_world():
    return make_taobao_world("tiny", seed=0)


@pytest.fixture(scope="session")
def movielens_world():
    return make_movielens_world("tiny", seed=0)


@pytest.fixture(scope="session")
def appstore_world():
    return make_appstore_world("tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_config():
    return ExperimentConfig(
        dataset="taobao",
        scale="tiny",
        tradeoff=0.5,
        list_length=10,
        num_train_requests=120,
        num_test_requests=40,
        ranker_interactions=800,
        hidden=8,
        train=TrainConfig(epochs=2, batch_size=32),
        seed=0,
    )


@pytest.fixture(scope="session")
def tiny_bundle(tiny_config):
    return prepare_bundle(tiny_config)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
