"""Remaining edge paths: error branches and less-traveled code."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.click import fit_dcm
from repro.core.trainer import TrainConfig
from repro.eval import ExperimentConfig, run_experiment
from repro.nn import Parameter, Tensor
from repro.rerank import PRMReranker


class TestNeuralRerankerErrorPaths:
    def test_unknown_loss_rejected_at_fit(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        model = PRMReranker(hidden=8, epochs=1)
        model.loss = "focal"
        from repro.data import RankingRequest

        request = RankingRequest(0, np.arange(4), np.zeros(4), clicks=np.zeros(4))
        with pytest.raises(ValueError):
            model.fit([request], world.catalog, world.population, histories)


class TestModuleRebinding:
    def test_reassigning_parameter_updates_registry(self):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(2))

        net = Net()
        net.w = Parameter(np.ones(3))
        params = list(net.parameters())
        assert len(params) == 1
        assert params[0].shape == (3,)

    def test_reassigning_child_module_updates_registry(self):
        class Net(nn.Module):
            def __init__(self):
                super().__init__()
                self.layer = nn.Linear(2, 2)

        net = Net()
        net.layer = nn.Linear(4, 4)
        names = dict(net.named_parameters())
        assert names["layer.weight"].shape == (4, 4)


class TestFitDCMEdgeCases:
    def test_no_logs(self):
        fitted = fit_dcm([], [], num_items=5)
        assert fitted.attraction.shape == (5,)
        assert np.allclose(fitted.attraction, 0.5)  # pure prior
        assert fitted.termination.shape == (0,)

    def test_all_positions_clicked(self):
        lists = [np.array([0, 1, 2])]
        clicks = [np.array([1.0, 1.0, 1.0])]
        fitted = fit_dcm(lists, clicks, num_items=3)
        assert (fitted.attraction[:3] > 0.5).all()
        # position 2 held the last click of its only session
        assert fitted.termination[2] > fitted.termination[0]


class TestRunExperimentDefaults:
    def test_builds_bundle_when_none_given(self):
        config = ExperimentConfig(
            dataset="taobao",
            scale="tiny",
            list_length=8,
            num_train_requests=30,
            num_test_requests=15,
            ranker_interactions=200,
            hidden=8,
            train=TrainConfig(epochs=1, batch_size=16),
        )
        results = run_experiment(config, ["init"])
        assert "init" in results


class TestTensorMaxEdge:
    def test_max_with_ties_splits_gradient(self):
        x = Tensor(np.array([[2.0, 2.0, 1.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_global_max(self):
        x = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])
