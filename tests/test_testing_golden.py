"""GoldenStore: record/compare semantics, tolerances, structured diffs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.testing import GoldenMismatch, GoldenStore, MissingGolden


@pytest.fixture()
def store(tmp_path):
    return GoldenStore(tmp_path, update=False)


@pytest.fixture()
def recorder(tmp_path):
    return GoldenStore(tmp_path, update=True)


class TestRecording:
    def test_update_writes_canonical_json(self, recorder):
        recorder.check("case", {"perm": np.array([2, 0, 1]), "score": np.float64(0.5)})
        stored = json.loads(recorder.path_for("case").read_text())
        assert stored == {"perm": [2, 0, 1], "score": 0.5}

    def test_missing_snapshot_tells_how_to_record(self, store):
        with pytest.raises(MissingGolden, match="--update-golden"):
            store.check("absent", {"x": 1})


class TestComparison:
    def test_identical_payload_passes(self, recorder, store):
        payload = {"perm": [[1, 0], [0, 1]], "scores": [0.25, 0.75]}
        recorder.check("case", payload)
        store.check("case", payload)

    def test_float_drift_within_tolerance_passes(self, recorder, store):
        recorder.check("case", {"s": 1.0})
        store.check("case", {"s": 1.0 + 1e-12})

    def test_float_drift_beyond_tolerance_fails(self, recorder, store):
        recorder.check("case", {"s": 1.0})
        with pytest.raises(GoldenMismatch, match=r"\$\.s"):
            store.check("case", {"s": 1.001})

    def test_permutation_change_is_exact_mismatch(self, recorder, store):
        recorder.check("case", {"perm": [0, 1, 2]})
        with pytest.raises(GoldenMismatch, match=r"perm\[1\]"):
            store.check("case", {"perm": [0, 2, 1]})

    def test_structure_changes_are_reported_per_path(self, recorder, store):
        recorder.check("case", {"a": 1, "b": [1, 2]})
        with pytest.raises(GoldenMismatch) as excinfo:
            store.check("case", {"a": 1, "b": [1, 2, 3], "c": 0})
        message = str(excinfo.value)
        assert "$.b: length 2 != 3" in message
        assert "$.c: only in current payload" in message

    def test_bool_is_not_coerced_to_float(self, recorder, store):
        recorder.check("case", {"flag": True})
        with pytest.raises(GoldenMismatch):
            store.check("case", {"flag": 1})

    def test_nan_matches_nan(self, recorder, store):
        recorder.check("case", {"s": float("nan")})
        stored = json.loads(recorder.path_for("case").read_text())
        assert stored  # NaN survives the json round-trip as NaN literal
        store.check("case", {"s": float("nan")})

    def test_mismatch_lists_every_divergent_path(self, recorder, store):
        recorder.check("case", {"a": [1, 2], "b": 3.0})
        with pytest.raises(GoldenMismatch) as excinfo:
            store.check("case", {"a": [9, 2], "b": 4.0})
        assert len(excinfo.value.diffs) == 2
