"""Data-parallel trainer tests: sharding, averaging math, backend parity.

The expensive multi-process runs live in ``test_dist_chaos.py`` (the
kill matrix); this file pins the deterministic building blocks plus the
headline backend-parity and resume guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import RapidConfig, TrainConfig, make_rapid_variant
from repro.core.trainer import apply_step, backward_batch
from repro.data import RankingRequest
from repro.data.batching import build_batch
from repro.dist import DistError, DistTrainConfig, train_dist
from repro.dist.train import average_contributions, shard_requests
from repro.resilience import FaultSpec
from repro.resilience.checkpoint import CheckpointConfig

pytestmark = pytest.mark.dist


@pytest.fixture(scope="module")
def training_setup(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = []
    for _ in range(16):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=10, replace=False)
        clicks = (rng.random(10) < 0.3).astype(float)
        requests.append(
            RankingRequest(user, items, rng.normal(size=10), clicks=clicks)
        )
    config = RapidConfig(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=4,
        seed=0,
    )
    return world, histories, requests, config


def _train(training_setup, dist, epochs=2):
    world, histories, requests, rapid_config = training_setup
    model = make_rapid_variant("rapid-det", rapid_config)
    result = train_dist(
        model,
        requests,
        world.catalog,
        world.population,
        histories,
        config=TrainConfig(epochs=epochs, batch_size=4, seed=0),
        dist=dist,
    )
    return model, result


def _params_equal(a, b) -> bool:
    return all(
        np.array_equal(pa.data, pb.data)
        for pa, pb in zip(a.parameters(), b.parameters())
    )


class TestShardRequests:
    def test_round_robin(self):
        requests = list(range(7))  # ids stand in for requests
        shards = shard_requests(requests, 3)
        assert shards == [[0, 3, 6], [1, 4], [2, 5]]

    def test_too_few_requests_is_classified(self):
        with pytest.raises(DistError):
            shard_requests([object()], 2)


class TestAverageContributions:
    def test_count_weighted_average(self):
        g0 = [np.array([1.0, 2.0]), np.array([[1.0]])]
        g1 = [np.array([3.0, 4.0]), np.array([[5.0]])]
        averaged, loss = average_contributions(
            [(0, g0, 0.5, 3), (1, g1, 1.0, 1)]
        )
        assert np.allclose(averaged[0], (g0[0] * 3 + g1[0] * 1) / 4)
        assert np.allclose(averaged[1], (g0[1] * 3 + g1[1] * 1) / 4)
        assert loss == pytest.approx((0.5 * 3 + 1.0 * 1) / 4)

    def test_single_contribution_is_identity(self):
        grads = [np.array([1.5, -2.0])]
        averaged, loss = average_contributions([(0, grads, 0.25, 8)])
        assert np.array_equal(averaged[0], grads[0])
        assert loss == 0.25

    def test_matches_concatenated_batch_gradient(self, training_setup):
        """sum(grad_r * count_r) / sum(count_r) == grad of the joint batch.

        This is the identity the whole replication scheme rests on: the
        pointwise BCE divides by the batch's weight sum, so count-weighted
        averaging of per-shard gradients reproduces the gradient of the
        concatenated batch (up to float reassociation).
        """
        world, histories, requests, rapid_config = training_setup
        tc = TrainConfig(batch_size=4, seed=0)
        kwargs = dict(
            topic_history_length=tc.topic_history_length,
            flat_history_length=tc.flat_history_length,
        )
        halves = [requests[:4], requests[4:8]]
        contribs = []
        model = make_rapid_variant("rapid-det", rapid_config)
        optimizer = nn.Adam(model.parameters(), lr=tc.lr)
        for rank, chunk in enumerate(halves):
            batch = build_batch(
                chunk, world.catalog, world.population, histories, **kwargs
            )
            loss, count = backward_batch(
                model, optimizer, batch, np.random.default_rng(7)
            )
            grads = [p.grad.copy() for p in model.parameters()]
            contribs.append((rank, grads, float(loss.item()), count))
        averaged, _ = average_contributions(contribs)
        joint = build_batch(
            requests[:8], world.catalog, world.population, histories, **kwargs
        )
        backward_batch(model, optimizer, joint, np.random.default_rng(7))
        for avg, param in zip(averaged, model.parameters()):
            assert np.allclose(avg, param.grad, rtol=1e-9, atol=1e-12)


class TestApplyStep:
    def test_installed_grads_must_align(self, training_setup):
        _, _, _, rapid_config = training_setup
        model = make_rapid_variant("rapid-det", rapid_config)
        optimizer = nn.Adam(model.parameters(), lr=0.01)
        with pytest.raises(ValueError):
            apply_step(model, optimizer, 5.0, grads=[np.zeros(3)])


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DistTrainConfig(world_size=0)
        with pytest.raises(ValueError):
            DistTrainConfig(backend="mpi")
        with pytest.raises(ValueError):
            DistTrainConfig(
                world_size=2,
                worker_chaos=((5, FaultSpec("dist.worker.step", kind="kill")),),
            )


class TestBackendParity:
    @pytest.mark.slow
    def test_process_equals_inline_bitwise(self, training_setup):
        inline_model, inline = _train(
            training_setup, DistTrainConfig(world_size=2, backend="inline")
        )
        process_model, process = _train(
            training_setup, DistTrainConfig(world_size=2, backend="process")
        )
        assert inline.losses == process.losses
        assert _params_equal(inline_model, process_model)
        assert process.restarts == 0 and process.degraded == []

    def test_inline_world_sizes_differ_but_converge(self, training_setup):
        # different W = different effective batch composition: not equal,
        # but both are real training runs on the same data
        _, w1 = _train(
            training_setup, DistTrainConfig(world_size=1, backend="inline")
        )
        _, w2 = _train(
            training_setup, DistTrainConfig(world_size=2, backend="inline")
        )
        assert len(w1.losses) == len(w2.losses) == 2
        assert w1.losses[-1] < w1.losses[0]
        assert w2.losses[-1] < w2.losses[0]


class TestCheckpointResume:
    def test_interrupted_run_resumes_bit_identically(self, training_setup, tmp_path):
        def dist():
            return DistTrainConfig(
                world_size=2,
                backend="inline",
                checkpoint=CheckpointConfig(directory=tmp_path, fsync=False),
            )

        full_model, full = _train(
            training_setup, DistTrainConfig(world_size=2, backend="inline"), epochs=4
        )
        _train(training_setup, dist(), epochs=2)  # "killed" after epoch 2
        resumed_model, resumed = _train(training_setup, dist(), epochs=4)
        assert resumed.losses == full.losses
        assert _params_equal(full_model, resumed_model)
        # per-rank directories with per-worker identity in `extra`
        from repro.resilience.checkpoint import CheckpointManager

        for rank in range(2):
            manager = CheckpointManager(
                CheckpointConfig(directory=tmp_path / f"rank{rank:03d}")
            )
            _, checkpoint = manager.latest()
            assert int(checkpoint.extra["rank"]) == rank
            assert int(checkpoint.extra["world_size"]) == 2
