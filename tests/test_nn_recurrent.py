"""Recurrent layer tests: cell math, masking semantics, gradients."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.nn import Tensor


def _numeric_param_grad(module, param, loss_fn, eps=1e-6):
    grad = np.zeros_like(param.data)
    flat_grad = grad.ravel()
    flat = param.data.ravel()
    for i in range(param.data.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = loss_fn()
        flat[i] = orig - eps
        minus = loss_fn()
        flat[i] = orig
        flat_grad[i] = (plus - minus) / (2 * eps)
    return grad


class TestLSTMCell:
    def test_output_shapes(self):
        cell = nn.LSTMCell(4, 3, rng=np.random.default_rng(0))
        h, c = cell(Tensor(np.ones((2, 4))))
        assert h.shape == (2, 3)
        assert c.shape == (2, 3)

    def test_state_threading(self):
        cell = nn.LSTMCell(4, 3, rng=np.random.default_rng(0))
        x = Tensor(np.ones((1, 4)))
        h1, c1 = cell(x)
        h2, c2 = cell(x, (h1, c1))
        assert not np.allclose(h1.numpy(), h2.numpy())

    def test_forget_bias_initialized_to_one(self):
        cell = nn.LSTMCell(4, 3)
        assert np.allclose(cell.bias.data[3:6], 1.0)

    def test_gradient_through_cell(self):
        rng = np.random.default_rng(0)
        cell = nn.LSTMCell(3, 2, rng=rng)
        x_data = rng.normal(size=(2, 3))

        def loss_fn():
            h, _ = cell(Tensor(x_data))
            return h.sum().item()

        cell.zero_grad()
        h, _ = cell(Tensor(x_data))
        h.sum().backward()
        numeric = _numeric_param_grad(cell, cell.w_ih, loss_fn)
        assert np.allclose(cell.w_ih.grad, numeric, atol=1e-6)


class TestGRUCell:
    def test_output_shape(self):
        cell = nn.GRUCell(4, 3, rng=np.random.default_rng(0))
        assert cell(Tensor(np.ones((2, 4)))).shape == (2, 3)

    def test_gradient_through_cell(self):
        rng = np.random.default_rng(1)
        cell = nn.GRUCell(3, 2, rng=rng)
        x_data = rng.normal(size=(2, 3))

        def loss_fn():
            return cell(Tensor(x_data)).sum().item()

        cell.zero_grad()
        cell(Tensor(x_data)).sum().backward()
        numeric = _numeric_param_grad(cell, cell.w_hh, loss_fn)
        assert np.allclose(cell.w_hh.grad, numeric, atol=1e-6)


class TestSequenceLayers:
    def test_lstm_output_shapes(self):
        lstm = nn.LSTM(4, 3, rng=np.random.default_rng(0))
        outputs, final = lstm(Tensor(np.ones((2, 5, 4))))
        assert outputs.shape == (2, 5, 3)
        assert final.shape == (2, 3)
        assert np.allclose(outputs.numpy()[:, -1], final.numpy())

    def test_mask_freezes_state_after_last_valid(self):
        lstm = nn.LSTM(4, 3, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 5, 4))
        mask = np.array([[True, True, True, False, False]])
        outputs, final = lstm(Tensor(x), mask=mask)
        # Final state equals the state after the 3rd (last valid) input.
        assert np.allclose(final.numpy(), outputs.numpy()[0, 2])
        assert np.allclose(outputs.numpy()[0, 3], outputs.numpy()[0, 2])

    def test_mask_matches_truncated_sequence(self):
        lstm = nn.LSTM(4, 3, rng=np.random.default_rng(0))
        x = np.random.default_rng(2).normal(size=(1, 5, 4))
        mask = np.array([[True, True, False, False, False]])
        _, final_masked = lstm(Tensor(x), mask=mask)
        _, final_short = lstm(Tensor(x[:, :2]))
        assert np.allclose(final_masked.numpy(), final_short.numpy())

    def test_empty_mask_keeps_zero_state(self):
        lstm = nn.LSTM(4, 3, rng=np.random.default_rng(0))
        x = np.ones((1, 3, 4))
        mask = np.zeros((1, 3), dtype=bool)
        _, final = lstm(Tensor(x), mask=mask)
        assert np.allclose(final.numpy(), 0.0)

    def test_gru_runs_with_mask(self):
        gru = nn.GRU(4, 3, rng=np.random.default_rng(0))
        mask = np.array([[True, True, False]])
        outputs, final = gru(Tensor(np.ones((1, 3, 4))), mask=mask)
        assert outputs.shape == (1, 3, 3)
        assert np.allclose(final.numpy(), outputs.numpy()[0, 1])


class TestBiLSTM:
    def test_output_is_concatenation(self):
        bi = nn.BiLSTM(4, 3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 4)))
        out = bi(x)
        assert out.shape == (2, 5, 6)
        fwd, _ = bi.forward_lstm(x)
        assert np.allclose(out.numpy()[:, :, :3], fwd.numpy())

    def test_backward_direction_sees_future(self):
        bi = nn.BiLSTM(2, 2, rng=np.random.default_rng(0))
        x = np.zeros((1, 4, 2))
        x[0, 3] = 5.0  # only the last step carries signal
        out = bi(Tensor(x)).numpy()
        # The backward half at position 0 must react to the change at t=3.
        x2 = x.copy()
        x2[0, 3] = -5.0
        out2 = bi(Tensor(x2)).numpy()
        assert not np.allclose(out[0, 0, 2:], out2[0, 0, 2:])
        # The forward half at position 0 must not.
        assert np.allclose(out[0, 0, :2], out2[0, 0, :2])

    def test_gradients_flow_to_both_directions(self):
        bi = nn.BiLSTM(3, 2, rng=np.random.default_rng(0))
        out = bi(Tensor(np.ones((1, 4, 3))))
        out.sum().backward()
        assert bi.forward_lstm.cell.w_ih.grad is not None
        assert bi.backward_lstm.cell.w_ih.grad is not None
