"""Theory tests: submodular oracle, gamma, linear bandit, regret (Thm 5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.theory import (
    GreedyOraclePolicy,
    LinearDCMEnvironment,
    LinearRapidUCB,
    approximation_gamma,
    dcm_satisfaction,
    greedy_maximize,
    run_regret_experiment,
    theoretical_bound,
)


class TestGreedyMaximize:
    def test_coverage_greedy_selects_disjoint(self):
        coverages = [
            np.array([1.0, 0.0, 0.0]),
            np.array([0.9, 0.0, 0.0]),
            np.array([0.0, 1.0, 0.0]),
        ]

        def gain(selected, candidate):
            base = 1.0 - np.prod([1.0 - c for c in selected], axis=0) if selected else 0.0
            new = 1.0 - np.prod([1.0 - c for c in selected + [candidate]], axis=0)
            return float(np.sum(new - base))

        chosen = greedy_maximize(gain, coverages, k=2)
        assert np.array_equal(chosen[0], coverages[0])
        assert np.array_equal(chosen[1], coverages[2])

    def test_respects_k(self):
        chosen = greedy_maximize(lambda s, c: c, [3.0, 1.0, 2.0], k=2)
        assert chosen == [3.0, 2.0]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            greedy_maximize(lambda s, c: 0.0, [1], k=0)


class TestGammaAndSatisfaction:
    def test_gamma_k1(self):
        assert approximation_gamma(1, 0.5) == pytest.approx(1 - 1 / np.e)

    def test_gamma_decreases_with_phi_max(self):
        assert approximation_gamma(5, 0.9) <= approximation_gamma(5, 0.1)

    def test_gamma_formula(self):
        # K = 5, phi_max = 1: max(1/5, 1 - 2/4) = 0.5
        assert approximation_gamma(5, 1.0) == pytest.approx((1 - 1 / np.e) * 0.5)
        # K = 2, phi_max = 1: max(1/2, 1 - 2) = 0.5 -> the 1/K floor binds
        assert approximation_gamma(2, 1.0) == pytest.approx((1 - 1 / np.e) * 0.5)

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            approximation_gamma(0, 0.5)
        with pytest.raises(ValueError):
            approximation_gamma(5, 1.5)

    def test_satisfaction_monotone_in_phi(self):
        eps = np.array([0.5, 0.5])
        low = dcm_satisfaction(np.array([0.2, 0.2]), eps)
        high = dcm_satisfaction(np.array([0.8, 0.8]), eps)
        assert high > low


class TestLinearEnvironment:
    @pytest.fixture(scope="class")
    def env(self):
        return LinearDCMEnvironment.create(seed=0)

    def test_omega_star_within_unit_ball(self, env):
        # Theorem 5.1 requires ||omega*|| <= 1; the environment uses 0.7 to
        # keep attraction strictly inside (0, 1) (see linear_rapid.py).
        assert np.linalg.norm(env.omega_star) == pytest.approx(0.7)

    def test_eta_concatenates_gain(self, env):
        rng = np.random.default_rng(0)
        features, coverage = env.sample_candidates(6, rng)
        eta = env.eta(features, coverage, np.ones(env.num_topics))
        assert eta.shape == (6, env.q0)
        assert np.allclose(eta[:, : env.feature_dim], features)
        assert np.allclose(eta[:, env.feature_dim :], coverage)

    def test_prefix_discounts_gain(self, env):
        rng = np.random.default_rng(1)
        features, coverage = env.sample_candidates(3, rng)
        full = env.eta(features, coverage, np.ones(env.num_topics))
        half = env.eta(features, coverage, np.full(env.num_topics, 0.5))
        assert (half[:, env.feature_dim :] <= full[:, env.feature_dim :] + 1e-12).all()

    def test_termination_non_increasing(self, env):
        assert (np.diff(env.termination) <= 0).all()

    def test_session_click_semantics(self, env):
        rng = np.random.default_rng(2)
        clicks, examined = env.simulate_session(np.full(env.k, 0.5), rng)
        # examined is a prefix
        if not examined.all():
            first_false = int(np.argmin(examined))
            assert not examined[first_false:].any()
        assert ((clicks == 0) | (clicks == 1)).all()


class TestLinearRapidUCB:
    def test_update_shrinks_uncertainty(self):
        env = LinearDCMEnvironment.create(seed=0)
        learner = LinearRapidUCB(env, exploration=1.0)
        rng = np.random.default_rng(0)
        features, coverage = env.sample_candidates(5, rng)
        eta = env.eta(features, coverage, np.ones(env.num_topics))
        width_before = np.sqrt(
            np.einsum("ij,jk,ik->i", eta, learner._m_inverse, eta)
        )
        learner.update(eta, np.ones(5))
        width_after = np.sqrt(
            np.einsum("ij,jk,ik->i", eta, learner._m_inverse, eta)
        )
        assert (width_after < width_before).all()

    def test_sherman_morrison_matches_direct_inverse(self):
        env = LinearDCMEnvironment.create(seed=0)
        learner = LinearRapidUCB(env)
        rng = np.random.default_rng(1)
        for _ in range(3):
            features, coverage = env.sample_candidates(4, rng)
            eta = env.eta(features, coverage, np.ones(env.num_topics))
            learner.update(eta, rng.random(4))
        assert np.allclose(
            learner._m_inverse, np.linalg.inv(learner.m_matrix), atol=1e-8
        )

    def test_select_returns_k_distinct(self):
        env = LinearDCMEnvironment.create(seed=0)
        learner = LinearRapidUCB(env)
        rng = np.random.default_rng(2)
        features, coverage = env.sample_candidates(12, rng)
        order = learner.select(features, coverage)
        assert len(order) == env.k
        assert len(set(order.tolist())) == env.k

    def test_negative_exploration_raises(self):
        env = LinearDCMEnvironment.create(seed=0)
        with pytest.raises(ValueError):
            LinearRapidUCB(env, exploration=-1.0)


class TestRegretExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_regret_experiment(horizon=600, seed=0, exploration=0.5)

    def test_raw_regret_sublinear(self, result):
        assert result.sublinearity_ratio() < 1.0

    def test_scaled_regret_below_bound(self, result):
        assert (result.cumulative_regret <= result.bound).all()

    def test_oracle_dominates_on_average(self, result):
        assert result.per_round_oracle.mean() >= result.per_round_learner.mean() - 1e-6

    def test_bound_grows_like_sqrt_n(self):
        bound = theoretical_bound(10000, q0=10, k=5, gamma=0.3, p_v=0.1, exploration=1.0)
        # bound(4n)/bound(n) ~ 2 for sqrt growth (log factors make it a bit larger)
        ratio = bound[3999] / bound[999]
        assert 1.9 < ratio < 2.4

    def test_learner_improves_over_time(self, result):
        """Per-round regret in the last quarter below the first quarter."""
        gap = result.per_round_oracle - result.per_round_learner
        quarter = len(gap) // 4
        assert gap[-quarter:].mean() < gap[:quarter].mean()
