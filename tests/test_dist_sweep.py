"""Kill-safe eval sweep tests: grid, durability, chaos requeue, resume."""

from __future__ import annotations

import json

import pytest

from repro.core.trainer import TrainConfig
from repro.dist import (
    DistError,
    RestartPolicy,
    SweepCell,
    run_sweep,
    table2_cells,
)
from repro.dist.sweep import _cell_path, sweep_manifest_path
from repro.eval import ExperimentConfig
from repro.obs import MemorySink, RunLogger, set_run_logger
from repro.resilience import FaultSpec, chaos
from repro.utils.atomicio import checksum_sidecar_path, verify_checksum_sidecar

pytestmark = [pytest.mark.dist, pytest.mark.slow]

NO_SLEEP = lambda seconds: None  # noqa: E731 - sweeps never really wait

# The cheapest real cells: mmr needs no re-ranker training and svmrank is
# the fastest initial ranker, so each cell is bundle + evaluate only.
BASE = ExperimentConfig(
    dataset="taobao",
    scale="tiny",
    tradeoff=0.5,
    initial_ranker="svmrank",
    list_length=10,
    num_train_requests=40,
    num_test_requests=20,
    ranker_interactions=400,
    hidden=8,
    train=TrainConfig(epochs=1, batch_size=32),
    seed=0,
)
CELLS = table2_cells(
    models=("mmr",), datasets=("taobao",), tradeoffs=(0.5, 1.0), base=BASE
)


class TestTable2Cells:
    def test_default_grid_shape_and_ids(self):
        cells = table2_cells()
        assert len(cells) == 6  # 2 datasets x 3 tradeoffs x 1 model
        ids = [cell.cell_id for cell in cells]
        assert len(set(ids)) == len(ids)
        assert "taobao-lam0.5-rapid-pro" in ids
        assert "movielens-lam1-rapid-pro" in ids  # %g: 1.0 -> "1"

    def test_base_config_carries_everything_the_grid_does_not_vary(self):
        cells = table2_cells(models=("mmr",), datasets=("taobao",), base=BASE)
        for cell in cells:
            assert cell.config.scale == "tiny"
            assert cell.config.initial_ranker == "svmrank"
            assert cell.config.dataset == "taobao"


class TestValidation:
    def test_empty_sweep_is_refused(self, tmp_path):
        with pytest.raises(DistError, match="at least one cell"):
            run_sweep([], tmp_path)

    def test_duplicate_cell_ids_are_refused(self, tmp_path):
        cell = SweepCell(cell_id="dup", model="mmr", config=BASE)
        with pytest.raises(DistError, match="duplicate"):
            run_sweep([cell, cell], tmp_path)


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("sweep")


@pytest.fixture(scope="module")
def chaos_run(sweep_dir):
    """One sweep over CELLS with a parent-side kill on the first dispatch."""
    sink = MemorySink()
    previous = set_run_logger(RunLogger(sink))
    try:
        with chaos(
            FaultSpec("dist.sweep.cell", kind="kill", times=1)
        ) as plan:
            result = run_sweep(
                CELLS,
                sweep_dir,
                num_workers=2,
                policy=RestartPolicy(base_delay=0.0, max_delay=0.0),
                sleep=NO_SLEEP,
            )
            fires = plan.fires("dist.sweep.cell")
    finally:
        set_run_logger(previous)
    return result, fires, sink


class TestChaosSweep:
    def test_kill_is_requeued_and_accounted(self, chaos_run):
        result, fires, _ = chaos_run
        assert fires == 1
        assert result.restarts == fires
        assert result.degraded == []

    def test_every_cell_produced_metrics(self, chaos_run):
        result, _, _ = chaos_run
        assert sorted(result.results) == sorted(c.cell_id for c in CELLS)
        for cell in CELLS:
            record = result.results[cell.cell_id]
            assert record["model"] == "mmr"
            assert record["metrics"]  # non-empty metric dict
            assert all(
                isinstance(v, float) for v in record["metrics"].values()
            )

    def test_cells_are_durable_with_verified_sidecars(self, chaos_run, sweep_dir):
        result, _, _ = chaos_run
        for cell in CELLS:
            path = _cell_path(sweep_dir, cell.cell_id)
            assert verify_checksum_sidecar(path) is True
            assert json.loads(path.read_text()) == result.results[cell.cell_id]

    def test_manifest_lists_every_cell_with_digest(self, chaos_run, sweep_dir):
        result, _, _ = chaos_run
        manifest = json.loads(sweep_manifest_path(sweep_dir).read_text())
        assert result.manifest_path == sweep_manifest_path(sweep_dir)
        assert manifest["version"] == 1
        assert [e["cell_id"] for e in manifest["cells"]] == sorted(result.results)
        for entry in manifest["cells"]:
            sidecar = checksum_sidecar_path(sweep_dir / entry["path"])
            assert entry["sha256"] == sidecar.read_text().split()[0]
            assert entry["status"] == "done"

    def test_runlog_bookends_the_sweep(self, chaos_run):
        _, fires, sink = chaos_run
        start = [r for r in sink.records if r["event"] == "dist.sweep.start"]
        done = [r for r in sink.records if r["event"] == "dist.sweep.done"]
        assert start[0]["cells"] == len(CELLS) and start[0]["recovered"] == 0
        assert done[0]["cells"] == len(CELLS) and done[0]["restarts"] == fires

    def test_workers_ship_cell_spans_home(self, chaos_run):
        result, _, _ = chaos_run
        names = {record["name"] for record in result.span_records}
        assert any(name.startswith("dist.sweep.cell:") for name in names)


class TestResume:
    def test_second_run_recovers_everything_without_recomputing(
        self, chaos_run, sweep_dir
    ):
        first, _, _ = chaos_run
        sink = MemorySink()
        previous = set_run_logger(RunLogger(sink))
        try:
            second = run_sweep(CELLS, sweep_dir, num_workers=2, sleep=NO_SLEEP)
        finally:
            set_run_logger(previous)
        assert second.results == first.results
        assert second.restarts == 0
        start = [r for r in sink.records if r["event"] == "dist.sweep.start"]
        assert start[0]["recovered"] == len(CELLS)
        assert start[0]["outstanding"] == 0

    def test_a_lost_cell_is_recomputed_alone(self, chaos_run, sweep_dir):
        first, _, _ = chaos_run
        victim = CELLS[0].cell_id
        _cell_path(sweep_dir, victim).unlink()
        result = run_sweep(CELLS, sweep_dir, num_workers=1, sleep=NO_SLEEP)
        assert result.results == first.results  # deterministic recompute
        assert verify_checksum_sidecar(_cell_path(sweep_dir, victim)) is True
