"""Typed corruption errors and atomic writes for module state archives."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import nn
from repro.nn.serialization import (
    FORMAT_VERSION,
    VERSION_KEY,
    CheckpointCorruptError,
    load_module,
    read_state_archive,
    save_module,
)
from repro.utils import atomicio


def _mlp(seed: int = 0) -> nn.Module:
    rng = np.random.default_rng(seed)
    model = nn.Sequential(nn.Linear(4, 8), nn.Linear(8, 2))
    for param in model.parameters():
        param.data[...] = rng.normal(size=param.data.shape)
    return model


class TestVersionedArchives:
    def test_round_trip_and_version_field(self, tmp_path):
        model = _mlp()
        path = save_module(model, tmp_path / "model.npz")
        with np.load(path) as archive:
            assert int(archive[VERSION_KEY]) == FORMAT_VERSION
        other = _mlp(seed=9)
        load_module(other, path)
        for mine, theirs in zip(other.parameters(), model.parameters()):
            np.testing.assert_array_equal(mine.data, theirs.data)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_state_archive(tmp_path / "nope.npz")

    def test_garbage_bytes_raise_typed_error(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not an archive")
        with pytest.raises(CheckpointCorruptError) as excinfo:
            read_state_archive(path)
        assert excinfo.value.path == path
        assert "unreadable archive" in excinfo.value.reason

    def test_truncated_archive_raises_typed_error(self, tmp_path):
        model = _mlp()
        path = save_module(model, tmp_path / "model.npz")
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CheckpointCorruptError, match="unreadable archive"):
            load_module(_mlp(), path)

    def test_unversioned_archive_rejected(self, tmp_path):
        path = tmp_path / "old.npz"
        np.savez(path, **dict(_mlp().state_dict()))  # a pre-v1 style file
        with pytest.raises(CheckpointCorruptError, match="format-version"):
            read_state_archive(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        state = dict(_mlp().state_dict())
        state[VERSION_KEY] = np.array(FORMAT_VERSION + 1, dtype=np.int64)
        np.savez(path, **state)
        with pytest.raises(CheckpointCorruptError, match="newer than supported"):
            read_state_archive(path)


class TestAtomicWrites:
    def test_failed_write_preserves_previous_file(self, tmp_path, monkeypatch):
        path = tmp_path / "data.bin"
        atomicio.atomic_write_bytes(path, b"generation-1")

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(atomicio.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            atomicio.atomic_write_bytes(path, b"generation-2")
        monkeypatch.undo()
        assert path.read_bytes() == b"generation-1"
        assert list(tmp_path.glob("*.tmp")) == []  # temp cleaned up

    def test_atomic_savez_overwrites_in_one_step(self, tmp_path):
        path = tmp_path / "arrays.npz"
        atomicio.atomic_savez(path, {"x": np.arange(3)})
        atomicio.atomic_savez(path, {"x": np.arange(5)})
        with np.load(path) as archive:
            assert archive["x"].shape == (5,)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_checksum_sidecar_lifecycle(self, tmp_path):
        path = tmp_path / "arrays.npz"
        assert atomicio.verify_checksum_sidecar(path) is None  # no sidecar
        atomicio.atomic_savez(path, {"x": np.arange(3)}, checksum=True)
        assert atomicio.verify_checksum_sidecar(path) is True
        path.write_bytes(path.read_bytes() + b"tamper")
        assert atomicio.verify_checksum_sidecar(path) is False

    def test_sidecar_names_the_file(self, tmp_path):
        path = tmp_path / "arrays.npz"
        atomicio.atomic_savez(path, {"x": np.arange(3)}, checksum=True)
        sidecar = atomicio.checksum_sidecar_path(path)
        digest, name = sidecar.read_text().split()
        assert name == "arrays.npz"
        assert digest == atomicio.sha256_of_file(path)

    def test_save_module_is_atomic_and_leaves_no_temp(self, tmp_path):
        save_module(_mlp(), tmp_path / "model.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_fsync_false_skips_syscall(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            atomicio.os, "fsync", lambda fd: calls.append(fd) or real_fsync(fd)
        )
        atomicio.atomic_write_bytes(tmp_path / "a.bin", b"x", fsync=False)
        assert calls == []
        atomicio.atomic_write_bytes(tmp_path / "b.bin", b"x", fsync=True)
        assert len(calls) >= 1
