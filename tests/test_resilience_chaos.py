"""Chaos harness tests: scheduling, determinism, NaN poisoning, properties.

The load-bearing property (mirrors DESIGN.md §8): under any armed fault
plan, a pipeline either completes normally or raises a *classified* error
(:class:`ResilienceError`, :class:`NumericalError`,
:class:`CheckpointCorruptError`) — never a silently wrong result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RapidConfig, TrainConfig, make_rapid_variant, train_rapid
from repro.data import RankingRequest, load_catalog, save_catalog
from repro.nn.serialization import CheckpointCorruptError
from repro.obs import MemorySink, RunLogger, get_registry, set_run_logger
from repro.resilience import (
    ChaosPlan,
    FaultSpec,
    InjectedFault,
    ResilienceError,
    RetryBudgetExceeded,
    chaos,
    chaos_active,
    clear_chaos,
    faultpoint,
    install_chaos,
)
from repro.testing import NumericalError, sanitize


@pytest.fixture(scope="module")
def tiny_training(taobao_world):
    """A minimal but real training setup (8 requests, list length 10)."""
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = []
    for _ in range(8):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=10, replace=False)
        clicks = (rng.random(10) < 0.3).astype(float)
        requests.append(
            RankingRequest(user, items, rng.normal(size=10), clicks=clicks)
        )
    config = RapidConfig(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=4,
        seed=0,
    )
    return world, histories, requests, config


def _train(tiny_training, epochs: int = 1) -> list[float]:
    world, histories, requests, config = tiny_training
    model = make_rapid_variant("rapid-det", config)
    return train_rapid(
        model,
        requests,
        world.catalog,
        world.population,
        histories,
        config=TrainConfig(epochs=epochs, batch_size=4, seed=0),
    )


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec("data.load")
        assert spec.kind == "error" and spec.times == 1 and spec.after == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("data.load", kind="gamma-ray")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("data.load", probability=1.5)

    def test_negative_schedule_rejected(self):
        with pytest.raises(ValueError, match="after/times"):
            FaultSpec("data.load", after=-1)
        with pytest.raises(ValueError, match="after/times"):
            FaultSpec("data.load", times=-2)

    def test_nan_requires_op_site(self):
        with pytest.raises(ValueError, match="op\\.<name>"):
            FaultSpec("data.load", kind="nan")
        FaultSpec("op.sigmoid", kind="nan")  # fine


class TestScheduling:
    def test_faultpoint_is_inert_when_disarmed(self):
        assert not chaos_active()
        faultpoint("data.load")  # no plan installed: must be a no-op

    def test_fires_exactly_times(self):
        with chaos(FaultSpec("site.a", times=2)) as plan:
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    faultpoint("site.a")
            faultpoint("site.a")  # exhausted
            assert plan.fires("site.a") == 2

    def test_after_skips_first_hits(self):
        with chaos(FaultSpec("site.a", after=3, times=1)) as plan:
            for _ in range(3):
                faultpoint("site.a")
            with pytest.raises(InjectedFault):
                faultpoint("site.a")
            assert plan.fires() == 1

    def test_times_none_never_stops(self):
        with chaos(FaultSpec("site.a", times=None)) as plan:
            for _ in range(5):
                with pytest.raises(InjectedFault):
                    faultpoint("site.a")
            assert plan.fires() == 5

    def test_fnmatch_site_patterns(self):
        with chaos(FaultSpec("data.*", times=None)) as plan:
            with pytest.raises(InjectedFault):
                faultpoint("data.load")
            with pytest.raises(InjectedFault):
                faultpoint("data.save")
            faultpoint("train.epoch")  # unmatched
            assert plan.fires("data.*") == 2

    def test_probability_is_seed_deterministic(self):
        def pattern(seed: int) -> list[bool]:
            fired = []
            with chaos(
                FaultSpec("site.a", probability=0.5, times=None), seed=seed
            ):
                for _ in range(32):
                    try:
                        faultpoint("site.a")
                        fired.append(False)
                    except InjectedFault:
                        fired.append(True)
            return fired

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)  # astronomically unlikely to collide
        assert any(pattern(7)) and not all(pattern(7))

    def test_custom_error_type(self):
        with chaos(FaultSpec("site.a", error=TimeoutError, message="slow disk")):
            with pytest.raises(TimeoutError, match="slow disk"):
                faultpoint("site.a")

    def test_injected_fault_carries_site(self):
        with chaos(FaultSpec("site.a")):
            with pytest.raises(InjectedFault) as excinfo:
                faultpoint("site.a")
        assert excinfo.value.site == "site.a"
        assert isinstance(excinfo.value, ResilienceError)

    def test_latency_fault_uses_injected_sleeper(self):
        naps: list[float] = []
        with chaos(
            FaultSpec("site.a", kind="latency", latency_ms=250.0, times=2),
            sleep=naps.append,
        ):
            faultpoint("site.a")
            faultpoint("site.a")
            faultpoint("site.a")
        assert naps == [0.25, 0.25]

    def test_install_replaces_and_clear_is_idempotent(self):
        plan = install_chaos(ChaosPlan([FaultSpec("site.a")]))
        assert chaos_active()
        install_chaos(ChaosPlan([]))  # replaces
        faultpoint("site.a")  # old plan gone
        clear_chaos()
        clear_chaos()  # idempotent
        assert not chaos_active()
        assert plan.fires() == 0

    def test_fire_emits_counter_and_runlog_event(self):
        get_registry().reset()
        sink = MemorySink()
        previous = set_run_logger(RunLogger(sink))
        try:
            with chaos(FaultSpec("site.a")):
                with pytest.raises(InjectedFault):
                    faultpoint("site.a")
        finally:
            set_run_logger(previous)
        counter = get_registry().counter(
            "resilience.faults", site="site.a", kind="error"
        )
        assert counter.value == 1
        (event,) = sink.events("chaos.fault")
        assert event["site"] == "site.a" and event["kind"] == "error"


class TestNanPoisoning:
    def test_poisons_named_op_output(self):
        from repro import nn

        with chaos(FaultSpec("op.relu", kind="nan", times=1)):
            out = nn.Tensor(np.ones(4)).relu()
            assert np.isnan(out.data).any()
            clean = nn.Tensor(np.ones(4)).relu()  # times=1 exhausted
            assert np.isfinite(clean.data).all()

    def test_ops_restored_after_clear(self):
        from repro import nn
        from repro.nn.tensor import PROFILED_OPS

        before = {name: getattr(nn.Tensor, name, None) for name in PROFILED_OPS}
        with chaos(FaultSpec("op.relu", kind="nan")):
            pass
        after = {name: getattr(nn.Tensor, name, None) for name in PROFILED_OPS}
        assert before == after
        assert np.isfinite(nn.Tensor(np.ones(3)).relu().data).all()

    def test_sanitizer_traps_poison_with_op_name(self):
        from repro import nn

        t = nn.Tensor(np.ones((2, 2)), requires_grad=True)
        with chaos(FaultSpec("op.sigmoid", kind="nan", times=1)):
            with sanitize():
                with pytest.raises(NumericalError) as excinfo:
                    (t.sigmoid() * 2.0).sum()
        assert excinfo.value.op == "sigmoid"
        assert excinfo.value.kind == "nan"


class TestDataIoUnderChaos:
    def test_transient_load_fault_is_retried_away(self, taobao_world, tmp_path):
        path = tmp_path / "catalog.npz"
        save_catalog(taobao_world.catalog, path)
        # DEFAULT_IO_POLICY allows 3 attempts; 2 injected faults are absorbed.
        with chaos(FaultSpec("data.load", times=2)) as plan:
            catalog = load_catalog(path)
        assert plan.fires() == 2
        np.testing.assert_array_equal(catalog.features, taobao_world.catalog.features)

    def test_persistent_fault_exhausts_budget_classified(
        self, taobao_world, tmp_path
    ):
        path = tmp_path / "catalog.npz"
        save_catalog(taobao_world.catalog, path)
        with chaos(FaultSpec("data.load", times=None)):
            with pytest.raises(RetryBudgetExceeded) as excinfo:
                load_catalog(path)
        assert isinstance(excinfo.value.__cause__, InjectedFault)

    def test_save_fault_retried_leaves_valid_file(self, taobao_world, tmp_path):
        path = tmp_path / "catalog.npz"
        with chaos(FaultSpec("data.save", times=1)) as plan:
            save_catalog(taobao_world.catalog, path)
        assert plan.fires() == 1
        loaded = load_catalog(path)
        np.testing.assert_array_equal(loaded.coverage, taobao_world.catalog.coverage)


CLASSIFIED = (ResilienceError, NumericalError, CheckpointCorruptError)

TRAINING_FAULTS = [
    FaultSpec("train.epoch", times=1),
    FaultSpec("train.batch", after=1, times=1),
    FaultSpec("train.batch", probability=0.25, times=None),
    FaultSpec("train.*", error=TimeoutError),
    FaultSpec("op.__matmul__", kind="nan", times=1),
]


class TestChaosProperty:
    """Training under every scheduled fault completes-or-raises-classified."""

    @pytest.mark.parametrize(
        "spec", TRAINING_FAULTS, ids=lambda s: f"{s.site}/{s.kind}"
    )
    def test_training_completes_or_raises_classified(self, tiny_training, spec):
        with chaos(spec, seed=3):
            try:
                with sanitize():
                    losses = _train(tiny_training, epochs=2)
            except CLASSIFIED:
                return  # classified failure: acceptable outcome
            except TimeoutError:
                assert spec.error is TimeoutError  # the custom type we asked for
                return
        # Completed: the result must be sane, not silently poisoned.
        assert len(losses) == 2
        assert all(np.isfinite(losses))

    def test_latency_fault_degrades_but_completes(self, tiny_training):
        naps: list[float] = []
        with chaos(
            FaultSpec("train.batch", kind="latency", latency_ms=50.0, times=2),
            sleep=naps.append,
        ):
            losses = _train(tiny_training, epochs=1)
        assert len(naps) == 2
        assert len(losses) == 1 and np.isfinite(losses[0])

    def test_unfaulted_run_is_bitwise_unaffected_by_harness(self, tiny_training):
        baseline = _train(tiny_training, epochs=1)
        with chaos(FaultSpec("no.such.site")):
            armed = _train(tiny_training, epochs=1)
        assert baseline == armed
