"""Graceful-degradation tests: breaker state machine, fallbacks, chaos sweep.

The headline guarantee (ISSUE acceptance criterion): with the primary
RAPID model forced to time out, :class:`ResilientReranker` still returns a
valid permutation for **every** request of a 500-request chaos sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RapidConfig, RapidReranker, TrainConfig
from repro.data import RankingRequest, build_batch
from repro.obs import MemorySink, RunLogger, get_registry, set_run_logger
from repro.rerank import MMRReranker
from repro.rerank.base import Reranker
from repro.resilience import FaultSpec, chaos
from repro.resilience.degrade import (
    BREAKER_STATE_CODES,
    CircuitBreaker,
    ResilientReranker,
    default_fallback_chain,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


def _requests(world, count: int, list_length: int = 8, seed: int = 0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=list_length, replace=False)
        out.append(RankingRequest(user, items, rng.normal(size=list_length)))
    return out


def _batch(world, histories, count: int = 8, seed: int = 0):
    return build_batch(
        _requests(world, count, seed=seed),
        world.catalog,
        world.population,
        histories,
    )


def _rapid(world) -> RapidReranker:
    config = RapidConfig(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=4,
        seed=0,
    )
    return RapidReranker(config, train_config=TrainConfig(epochs=1, batch_size=8))


def _assert_valid(result: np.ndarray, batch) -> None:
    assert result.shape == (batch.batch_size, batch.list_length)
    assert (np.sort(result, axis=1) == np.arange(batch.list_length)).all()


class Boom(Reranker):
    """A reranker that always raises (and counts its invocations)."""

    name = "boom"

    def __init__(self) -> None:
        self.calls = 0

    def rerank(self, batch) -> np.ndarray:
        self.calls += 1
        raise RuntimeError("kaboom")


class Garbage(Reranker):
    """Returns structurally invalid output (simulating a buggy model)."""

    name = "garbage"

    def __init__(self, shape_ok: bool = True) -> None:
        self.shape_ok = shape_ok

    def rerank(self, batch) -> np.ndarray:
        if not self.shape_ok:
            return np.zeros((1, 2), dtype=np.int64)
        return np.zeros((batch.batch_size, batch.list_length), dtype=np.int64)


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()

    def test_success_resets_consecutive_count(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two in a row

    def test_half_open_after_recovery_then_closes_on_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        assert breaker.state == "open"
        clock.sleep(9.9)
        assert breaker.state == "open"
        clock.sleep(0.2)
        assert breaker.state == "half_open" and breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        clock.sleep(6.0)
        assert breaker.state == "half_open"
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        # The recovery window restarts from the reopen.
        clock.sleep(4.0)
        assert breaker.state == "open"

    def test_multiple_probe_successes_required(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1,
            recovery_seconds=1.0,
            half_open_successes=2,
            clock=clock,
        )
        breaker.record_failure()
        clock.sleep(2.0)
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_publishes_state_gauge_and_transition_events(self):
        get_registry().reset()
        sink = MemorySink()
        previous = set_run_logger(RunLogger(sink))
        clock = FakeClock()
        try:
            breaker = CircuitBreaker(
                failure_threshold=1, recovery_seconds=1.0, name="b", clock=clock
            )
            gauge = get_registry().gauge("resilience.breaker_state", breaker="b")
            assert gauge.value == BREAKER_STATE_CODES["closed"]
            breaker.record_failure()
            assert gauge.value == BREAKER_STATE_CODES["open"]
            clock.sleep(2.0)
            assert breaker.state == "half_open"
            assert gauge.value == BREAKER_STATE_CODES["half_open"]
        finally:
            set_run_logger(previous)
        transitions = [
            (e["old"], e["new"]) for e in sink.events("breaker.transition")
        ]
        assert transitions == [("closed", "open"), ("open", "half_open")]


class TestResilientReranker:
    def test_healthy_primary_serves_directly(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        batch = _batch(world, histories)
        get_registry().reset()
        mmr = MMRReranker()
        wrapped = ResilientReranker(MMRReranker(), fallbacks=[], deadline_ms=None)
        result = wrapped.rerank(batch)
        np.testing.assert_array_equal(result, mmr.rerank(batch))
        # No fallback counters were touched.
        fallbacks = [
            m for m in get_registry().collect() if m["name"] == "resilience.fallbacks"
        ]
        assert fallbacks == []

    def test_name_and_delegation(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        batch = _batch(world, histories)
        wrapped = ResilientReranker(MMRReranker(), fallbacks=[])
        assert wrapped.name == "resilient-mmr"

        class Scored(Reranker):
            name = "scored"

            def score_batch(self, batch):
                return batch.initial_scores

        np.testing.assert_allclose(
            ResilientReranker(Scored(), fallbacks=[]).score_batch(batch),
            batch.initial_scores,
        )
        # MMR builds lists greedily and exposes no scores: the delegation
        # surfaces the primary's own NotImplementedError untouched.
        with pytest.raises(NotImplementedError):
            wrapped.score_batch(batch)

    def test_golden_fallback_equals_plain_mmr_when_rapid_fails(
        self, taobao_world
    ):
        """ISSUE golden test: forced RAPID failure degrades to exactly MMR."""
        world = taobao_world
        histories = world.sample_histories()
        batch = _batch(world, histories, count=12)
        rapid = _rapid(world)
        wrapped = ResilientReranker(
            rapid, fallbacks=default_fallback_chain(tradeoff=0.8), deadline_ms=None
        )
        with chaos(FaultSpec("rerank.score.rapid-pro", times=None)) as plan:
            degraded = wrapped.rerank(batch)
        assert plan.fires() == 1
        np.testing.assert_array_equal(
            degraded, MMRReranker(tradeoff=0.8).rerank(batch)
        )
        # Without chaos the same wrapper serves RAPID's own slate again.
        np.testing.assert_array_equal(wrapped.rerank(batch), rapid.rerank(batch))

    def test_deadline_overrun_falls_back(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        batch = _batch(world, histories)
        clock = FakeClock()
        mmr = MMRReranker()
        wrapped = ResilientReranker(
            _rapid(world),
            fallbacks=[MMRReranker()],
            deadline_ms=50.0,
            clock=clock,
        )
        # A latency fault at the primary's fault point advances the same
        # fake clock the wrapper's deadline check reads: RAPID "takes"
        # 200 ms against a 50 ms budget, MMR takes zero.
        with chaos(
            FaultSpec(
                "rerank.score.rapid-pro",
                kind="latency",
                latency_ms=200.0,
                times=None,
            ),
            sleep=clock.sleep,
        ):
            result = wrapped.rerank(batch)
        np.testing.assert_array_equal(result, mmr.rerank(batch))

    def test_invalid_output_is_rejected(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        batch = _batch(world, histories)
        mmr = MMRReranker()
        for garbage in (Garbage(shape_ok=True), Garbage(shape_ok=False)):
            wrapped = ResilientReranker(
                garbage, fallbacks=[MMRReranker()], deadline_ms=None
            )
            np.testing.assert_array_equal(wrapped.rerank(batch), mmr.rerank(batch))

    def test_breaker_skips_doomed_primary(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        batch = _batch(world, histories)
        clock = FakeClock()
        boom = Boom()
        wrapped = ResilientReranker(
            boom,
            fallbacks=[MMRReranker()],
            deadline_ms=None,
            breaker=CircuitBreaker(failure_threshold=2, clock=clock),
        )
        get_registry().reset()
        for _ in range(5):
            _assert_valid(wrapped.rerank(batch), batch)
        # Two real failures opened the breaker; the other three were skipped.
        assert boom.calls == 2
        assert wrapped.breaker.state == "open"
        skipped = get_registry().counter(
            "resilience.fallbacks", reranker=wrapped.name, to="mmr",
            reason="breaker_open",
        )
        assert skipped.value == 3

    def test_breaker_recovers_when_primary_heals(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        batch = _batch(world, histories)
        clock = FakeClock()
        mmr = MMRReranker()
        wrapped = ResilientReranker(
            mmr,
            fallbacks=[],
            deadline_ms=None,
            breaker=CircuitBreaker(
                failure_threshold=1, recovery_seconds=5.0, clock=clock
            ),
        )
        with chaos(FaultSpec("rerank.score.mmr", times=1)):
            _assert_valid(wrapped.rerank(batch), batch)  # passthrough served
        assert wrapped.breaker.state == "open"
        clock.sleep(6.0)  # recovery window elapses → half-open probe
        result = wrapped.rerank(batch)
        np.testing.assert_array_equal(result, MMRReranker().rerank(batch))
        assert wrapped.breaker.state == "closed"

    def test_fallback_telemetry(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        batch = _batch(world, histories)
        get_registry().reset()
        sink = MemorySink()
        previous = set_run_logger(RunLogger(sink))
        try:
            wrapped = ResilientReranker(
                Boom(), fallbacks=[MMRReranker()], deadline_ms=None
            )
            wrapped.rerank(batch)
        finally:
            set_run_logger(previous)
        (event,) = sink.events("degrade.fallback")
        assert event["failed_stage"] == "boom"
        assert event["next_stage"] == "mmr"
        assert event["reason"] == "RuntimeError"
        requests = get_registry().counter(
            "resilience.requests", reranker="resilient-boom"
        )
        assert requests.value == 1

    def test_fit_trains_trainable_stages(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()

        class Trainable(Reranker):
            name = "trainable"
            requires_training = True

            def __init__(self) -> None:
                self.fitted = 0

            def fit(self, requests, catalog, population, histories):
                self.fitted += 1
                return self

            def rerank(self, batch):
                return np.tile(
                    np.arange(batch.list_length), (batch.batch_size, 1)
                )

        primary, fallback = Trainable(), Trainable()
        wrapped = ResilientReranker(primary, fallbacks=[fallback, MMRReranker()])
        assert wrapped.requires_training
        requests = _requests(world, 4)
        wrapped.fit(requests, world.catalog, world.population, histories)
        assert primary.fitted == 1 and fallback.fitted == 1


class TestChaosSweep:
    def test_500_request_sweep_always_serves_valid_permutations(
        self, taobao_world
    ):
        """RAPID times out on every request; MMR itself fails 30% of the
        time — every one of the 500 requests must still get a valid slate."""
        world = taobao_world
        histories = world.sample_histories()
        clock = FakeClock()
        wrapped = ResilientReranker(
            _rapid(world),
            fallbacks=default_fallback_chain(),
            deadline_ms=50.0,
            breaker=CircuitBreaker(
                failure_threshold=5, recovery_seconds=1e9, clock=clock
            ),
            clock=clock,
        )
        get_registry().reset()
        served = 0
        with chaos(
            FaultSpec(
                "rerank.score.rapid-pro",
                kind="latency",
                latency_ms=200.0,
                times=None,
            ),
            FaultSpec("rerank.score.mmr", probability=0.3, times=None),
            seed=11,
            sleep=clock.sleep,
        ) as plan:
            for index in range(25):  # 25 batches x 20 requests = 500
                batch = _batch(world, histories, count=20, seed=index)
                result = wrapped.rerank(batch)
                _assert_valid(result, batch)
                served += batch.batch_size
        assert served == 500
        # The sweep really exercised the chain: the primary either timed out
        # or was breaker-skipped on every request, and MMR faults pushed a
        # tail of requests down to the passthrough.
        assert plan.fires("rerank.score.mmr") > 0
        passthrough = get_registry().counter(
            "resilience.fallbacks",
            reranker=wrapped.name,
            to="passthrough",
            reason="InjectedFault",
        )
        assert passthrough.value == plan.fires("rerank.score.mmr")
