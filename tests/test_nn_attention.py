"""Attention layer tests: masking, equivariance, shapes, gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestSelfAttention:
    def test_matches_closed_form(self):
        attn = nn.SelfAttention()
        rng = np.random.default_rng(0)
        v = rng.normal(size=(1, 4, 6))
        out = attn(Tensor(v)).numpy()
        scores = v[0] @ v[0].T / np.sqrt(6)
        weights = np.exp(scores - scores.max(axis=1, keepdims=True))
        weights /= weights.sum(axis=1, keepdims=True)
        assert np.allclose(out[0], weights @ v[0])

    def test_no_parameters(self):
        assert nn.SelfAttention().num_parameters() == 0

    def test_mask_excludes_keys(self):
        attn = nn.SelfAttention()
        v = np.random.default_rng(0).normal(size=(1, 3, 4))
        mask = np.array([[True, True, False]])
        out_masked = attn(Tensor(v), mask=mask).numpy()
        out_short = attn(Tensor(v[:, :2])).numpy()
        assert np.allclose(out_masked[0, :2], out_short[0])


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        assert attn(Tensor(np.ones((3, 5, 8)))).shape == (3, 5, 8)

    def test_indivisible_heads_raise(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(7, 2)

    def test_key_mask_consistency(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 4, 8))
        mask = np.array([[True, True, True, False]])
        out_masked = attn(Tensor(x), mask=mask).numpy()
        out_short = attn(Tensor(x[:, :3])).numpy()
        assert np.allclose(out_masked[0, :3], out_short[0], atol=1e-10)

    def test_permutation_equivariance(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 5, 8))
        perm = np.array([3, 0, 4, 1, 2])
        out = attn(Tensor(x)).numpy()
        out_perm = attn(Tensor(x[:, perm])).numpy()
        assert np.allclose(out[:, perm], out_perm, atol=1e-10)

    def test_cross_attention_keys(self):
        attn = nn.MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(0))
        q = Tensor(np.ones((1, 2, 8)))
        kv = Tensor(np.random.default_rng(2).normal(size=(1, 6, 8)))
        assert attn(q, keys=kv).shape == (1, 2, 8)


class TestTransformerEncoderLayer:
    def test_shape_preserved(self):
        layer = nn.TransformerEncoderLayer(8, 2, rng=np.random.default_rng(0))
        assert layer(Tensor(np.ones((2, 5, 8)))).shape == (2, 5, 8)

    def test_gradients_reach_all_parameters(self):
        layer = nn.TransformerEncoderLayer(8, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.random.default_rng(1).normal(size=(2, 4, 8))))
        out.sum().backward()
        missing = [
            name for name, p in layer.named_parameters() if p.grad is None
        ]
        assert not missing, f"no grad for {missing}"


class TestInducedSetAttention:
    def test_shape_and_params(self):
        block = nn.InducedSetAttention(8, 2, num_inducing=3, rng=np.random.default_rng(0))
        out = block(Tensor(np.ones((2, 7, 8))))
        assert out.shape == (2, 7, 8)
        assert block.inducing.shape == (3, 8)

    def test_permutation_equivariance(self):
        block = nn.InducedSetAttention(8, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 6, 8))
        perm = np.array([5, 2, 0, 4, 1, 3])
        out = block(Tensor(x)).numpy()
        out_perm = block(Tensor(x[:, perm])).numpy()
        assert np.allclose(out[:, perm], out_perm, atol=1e-8)


class TestGatedLocalAttention:
    def test_shape(self):
        block = nn.GatedLocalAttention(8, 2, window=2, rng=np.random.default_rng(0))
        assert block(Tensor(np.ones((2, 6, 8)))).shape == (2, 6, 8)

    def test_causality_of_causal_branch(self):
        """Changing a later item must not change the causal branch earlier.

        The fused output mixes the local branch (which sees +-window), so we
        check positions beyond the local window from the perturbation.
        """
        block = nn.GatedLocalAttention(8, 2, window=1, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(1, 6, 8))
        x2 = x.copy()
        x2[0, 5] += 3.0  # perturb the last item
        out = block(Tensor(x)).numpy()
        out2 = block(Tensor(x2)).numpy()
        # positions 0..3 are outside both the causal past and the window
        assert np.allclose(out[0, :4], out2[0, :4], atol=1e-10)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            nn.GatedLocalAttention(8, 2, window=0)
