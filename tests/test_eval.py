"""Experiment harness tests: protocol validation, pipeline, tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trainer import TrainConfig
from repro.eval import (
    DEFAULT_MODELS,
    ExperimentConfig,
    evaluate_reranker,
    format_series,
    format_table,
    make_reranker,
    prepare_bundle,
    run_experiment,
)


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.dataset == "taobao"

    def test_invalid_dataset(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dataset="netflix")

    def test_invalid_ranker(self):
        with pytest.raises(ValueError):
            ExperimentConfig(initial_ranker="bm25")

    def test_invalid_eval_mode(self):
        with pytest.raises(ValueError):
            ExperimentConfig(eval_mode="online")

    def test_invalid_tradeoff(self):
        with pytest.raises(ValueError):
            ExperimentConfig(tradeoff=2.0)


class TestPrepareBundle:
    def test_bundle_contents(self, tiny_bundle, tiny_config):
        bundle = tiny_bundle
        assert len(bundle.train_requests) == tiny_config.num_train_requests
        assert len(bundle.test_requests) == tiny_config.num_test_requests
        assert all(r.fully_observed for r in bundle.train_requests)
        assert not any(r.fully_observed for r in bundle.test_requests)

    def test_initial_lists_sorted_by_score(self, tiny_bundle):
        for request in tiny_bundle.train_requests[:10]:
            assert (np.diff(request.initial_scores) <= 1e-9).all()

    def test_clicks_are_binary(self, tiny_bundle):
        for request in tiny_bundle.train_requests[:10]:
            assert set(np.unique(request.clicks)) <= {0.0, 1.0}


class TestMakeReranker:
    def test_init_returns_none(self, tiny_bundle):
        assert make_reranker("init", tiny_bundle) is None

    @pytest.mark.parametrize("name", [m for m in DEFAULT_MODELS if m != "init"])
    def test_all_models_constructible(self, tiny_bundle, name):
        reranker = make_reranker(name, tiny_bundle)
        assert reranker is not None
        assert reranker.name == name or reranker.name.startswith("rapid")

    def test_unknown_model_raises(self, tiny_bundle):
        with pytest.raises(ValueError):
            make_reranker("bert4rec", tiny_bundle)


class TestEvaluateReranker:
    def test_init_metrics_complete(self, tiny_bundle):
        result = evaluate_reranker(None, tiny_bundle)
        for k in (5, 10):
            for metric in ("click", "ndcg", "div", "satis"):
                assert f"{metric}@{k}" in result.metrics
        assert result["click@5"] > 0

    def test_per_request_samples_align(self, tiny_bundle):
        result = evaluate_reranker(None, tiny_bundle)
        assert len(result.per_request_clicks[5]) == len(tiny_bundle.test_requests)
        assert np.mean(result.per_request_clicks[5]) == pytest.approx(
            result["click@5"]
        )

    def test_mmr_increases_div(self, tiny_bundle):
        init = evaluate_reranker(None, tiny_bundle)
        mmr = evaluate_reranker(make_reranker("mmr", tiny_bundle), tiny_bundle)
        assert mmr["div@5"] > init["div@5"]

    def test_logged_mode_uses_recorded_clicks(self, tiny_bundle):
        import dataclasses

        logged_config = dataclasses.replace(tiny_bundle.config, eval_mode="logged")
        original = tiny_bundle.config
        tiny_bundle.config = logged_config
        try:
            result = evaluate_reranker(None, tiny_bundle)
            expected = np.mean(
                [r.clicks[:5].sum() for r in tiny_bundle.test_requests]
            )
            assert result["click@5"] == pytest.approx(expected)
        finally:
            tiny_bundle.config = original


class TestRunExperiment:
    def test_subset_run(self, tiny_config, tiny_bundle):
        results = run_experiment(tiny_config, ["init", "mmr"], bundle=tiny_bundle)
        assert set(results) == {"init", "mmr"}
        assert results["mmr"]["div@10"] >= results["init"]["div@10"]


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            {"init": {"click@5": 1.0}, "rapid": {"click@5": 1.5, "div@5": 2.0}},
            title="Demo",
        )
        assert "Demo" in text
        assert "click@5" in text
        assert "div@5" in text
        assert "-" in text  # missing value placeholder

    def test_format_table_column_selection(self):
        text = format_table(
            {"a": {"x": 1.0, "y": 2.0}}, columns=["y"]
        )
        assert "y" in text and "x" not in text

    def test_format_series(self):
        text = format_series(
            {"click@10": [1.0, 2.0]}, x_label="hidden", x_values=[8, 16]
        )
        assert "hidden" in text
        assert "1.0000" in text
