"""Smoke-test wiring for ``benchmarks/bench_sanitizer_overhead.py``.

Runs the microbenchmark's machinery and checks structure only — no
wall-clock assertions, so the suite stays deterministic on busy machines.
The real <5% disabled-residue gate runs via
``python benchmarks/bench_sanitizer_overhead.py``.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.testing import is_sanitizer_enabled

_BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"


@pytest.fixture(scope="module")
def bench():
    sys.path.insert(0, str(_BENCH_DIR))  # for its `from bench_utils import ...`
    try:
        spec = importlib.util.spec_from_file_location(
            "bench_sanitizer_overhead", _BENCH_DIR / "bench_sanitizer_overhead.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    finally:
        sys.path.remove(str(_BENCH_DIR))


@pytest.mark.bench
@pytest.mark.slow
def test_measure_reports_structure_and_restores_state(bench):
    result = bench.measure()
    assert set(result) == {
        "baseline_ms_per_batch",
        "disabled_ms_per_batch",
        "enabled_ms_per_batch",
        "disabled_overhead_fraction",
        "enabled_overhead_fraction",
    }
    assert result["baseline_ms_per_batch"] > 0.0
    assert result["enabled_ms_per_batch"] > 0.0
    assert np.isfinite(result["disabled_overhead_fraction"])
    # The bench must leave the process unpatched for the rest of the suite.
    assert not is_sanitizer_enabled()


def test_budget_constant_is_five_percent(bench):
    assert bench.MAX_DISABLED_OVERHEAD == pytest.approx(0.05)
