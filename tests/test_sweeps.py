"""Tests for the hyper-parameter grid search (Sec. IV-C protocol)."""

from __future__ import annotations

import pytest

from repro.eval import grid_search


class TestGridSearch:
    def test_searches_all_combinations(self, tiny_bundle):
        result = grid_search(
            "mmr",  # heuristic: fast, no training — exercises the machinery
            tiny_bundle,
            {"hidden": [8, 16]},
            metric="click@5",
        )
        assert len(result.trace) == 2
        assert result.best_params["hidden"] in (8, 16)
        assert result.best_score == max(score for _, score in result.trace)

    def test_trains_learned_model(self, tiny_bundle):
        result = grid_search(
            "rapid-det",
            tiny_bundle,
            {"epochs": [1], "hidden": [8]},
            metric="click@5",
        )
        assert result.best_params == {"epochs": 1, "hidden": 8}
        assert result.metric == "click@5"

    def test_empty_grid_raises(self, tiny_bundle):
        with pytest.raises(ValueError):
            grid_search("mmr", tiny_bundle, {})

    def test_unknown_parameter_raises(self, tiny_bundle):
        with pytest.raises(ValueError):
            grid_search("mmr", tiny_bundle, {"dropout": [0.5]})

    def test_does_not_touch_test_requests(self, tiny_bundle):
        before = list(tiny_bundle.test_requests)
        grid_search("mmr", tiny_bundle, {"hidden": [8]})
        assert tiny_bundle.test_requests == before
