"""Deeper initial-ranker tests: DIN attention behavior, ranker contracts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rankers import DINRanker, LambdaMARTRanker, SVMRankRanker


class TestDINInternals:
    def test_history_arrays_truncate_to_recent(self, taobao_world):
        world = taobao_world
        ranker = DINRanker(history_length=5)
        histories = [np.arange(12)]
        features, mask = ranker._history_arrays(
            np.array([0]), world.catalog, histories
        )
        assert features.shape == (1, 5, world.catalog.feature_dim)
        assert mask.all()
        assert np.allclose(features[0, 0], world.catalog.features[7])

    def test_history_arrays_pad_short_history(self, taobao_world):
        world = taobao_world
        ranker = DINRanker(history_length=5)
        histories = [np.array([3, 4])]
        features, mask = ranker._history_arrays(
            np.array([0]), world.catalog, histories
        )
        assert mask[0].tolist() == [True, True, False, False, False]
        assert np.allclose(features[0, 2:], 0.0)

    def test_score_requires_histories(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        ranker = DINRanker(epochs=1)
        ranker.fit(
            world.sample_ranker_training(300),
            world.catalog,
            world.population,
            histories=histories,
        )
        with pytest.raises(ValueError):
            ranker.score(
                np.array([0]), np.array([[1, 2]]), world.catalog, world.population
            )

    def test_deterministic_given_seed(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        interactions = world.sample_ranker_training(300)
        users = np.array([0, 1])
        candidates = np.array([[1, 2, 3], [4, 5, 6]])

        def train_and_score():
            ranker = DINRanker(epochs=1, seed=7)
            ranker.fit(interactions, world.catalog, world.population, histories)
            return ranker.score(
                users, candidates, world.catalog, world.population, histories
            )

        assert np.allclose(train_and_score(), train_and_score())


class TestRankContract:
    @pytest.mark.parametrize(
        "make_ranker",
        [
            lambda: SVMRankRanker(epochs=2),
            pytest.param(
                lambda: LambdaMARTRanker(num_trees=4), marks=pytest.mark.slow
            ),
        ],
        ids=["svmrank", "lambdamart"],
    )
    def test_rank_returns_permuted_candidates(self, taobao_world, make_ranker):
        world = taobao_world
        histories = world.sample_histories()
        interactions = world.sample_ranker_training(500)
        ranker = make_ranker()
        ranker.fit(interactions, world.catalog, world.population, histories=histories)
        users = np.array([0, 1, 2])
        candidates = np.vstack(
            [
                np.random.default_rng(i).choice(
                    world.config.num_items, size=6, replace=False
                )
                for i in range(3)
            ]
        )
        items, scores = ranker.rank(
            users, candidates, world.catalog, world.population, histories=histories
        )
        for row in range(3):
            assert sorted(items[row].tolist()) == sorted(candidates[row].tolist())
            assert (np.diff(scores[row]) <= 1e-12).all()
