"""Randomized-program gradient checks.

Hypothesis generates random small computation graphs by composing the
autograd ops; the composed gradient must match central finite differences.
This catches interaction bugs (e.g. broadcasting inside a softmax feeding
a matmul) that per-op tests cannot.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor

_UNARY = [
    lambda t: t.tanh(),
    lambda t: t.sigmoid(),
    lambda t: (t * t + 1.0).log(),
    lambda t: t.softmax(axis=-1),
    lambda t: (t + 0.05).relu(),
    lambda t: t * 2.5 - 1.0,
    lambda t: t.exp() * 0.1,
]

_BINARY = [
    lambda a, b: a + b,
    lambda a, b: a * b,
    lambda a, b: a - b * 0.5,
    lambda a, b: a / (b * b + 1.0),
]


@st.composite
def random_program(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    ops = draw(
        st.lists(st.integers(0, len(_UNARY) - 1), min_size=1, max_size=4)
    )
    binary = draw(st.integers(0, len(_BINARY) - 1))
    rows = draw(st.integers(1, 3))
    cols = draw(st.integers(2, 4))
    return seed, ops, binary, (rows, cols)


def _evaluate(x_data: np.ndarray, aux: np.ndarray, ops, binary) -> Tensor:
    t = Tensor(x_data) if not isinstance(x_data, Tensor) else x_data
    for op_index in ops:
        t = _UNARY[op_index](t)
    return _BINARY[binary](t, Tensor(aux))


class TestRandomPrograms:
    @given(random_program())
    @settings(max_examples=60, deadline=None)
    def test_composed_gradients_match_finite_differences(self, program):
        seed, ops, binary, shape = program
        rng = np.random.default_rng(seed)
        x_data = rng.normal(size=shape) * 0.8
        aux = rng.normal(size=shape) * 0.8 + 2.0  # keep divisors away from 0

        x = Tensor(x_data.copy(), requires_grad=True)
        _evaluate(x, aux, ops, binary).sum().backward()

        eps = 1e-6
        numeric = np.zeros_like(x_data)
        flat = x_data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for i in range(x_data.size):
            original = flat[i]
            flat[i] = original + eps
            plus = _evaluate(x_data, aux, ops, binary).sum().item()
            flat[i] = original - eps
            minus = _evaluate(x_data, aux, ops, binary).sum().item()
            flat[i] = original
            numeric_flat[i] = (plus - minus) / (2 * eps)
        # Relative tolerance matters: programs that stack exp can reach
        # gradients ~1e37 where finite differences carry proportionally
        # scaled cancellation error, so a pure atol is order-of-magnitude
        # dependent and flaky across hypothesis examples.
        assert np.allclose(x.grad, numeric, rtol=1e-4, atol=1e-4), (
            f"ops={ops} binary={binary} max err "
            f"{np.abs(x.grad - numeric).max()}"
        )


class TestLSTMAgainstReference:
    def test_lstm_matches_manual_unroll(self):
        """The sequence LSTM must equal a hand-unrolled reference using the
        same cell equations on raw numpy."""
        from repro.nn import LSTM

        rng = np.random.default_rng(0)
        lstm = LSTM(3, 2, rng=rng)
        x = rng.normal(size=(1, 4, 3))

        w_ih = lstm.cell.w_ih.data
        w_hh = lstm.cell.w_hh.data
        bias = lstm.cell.bias.data
        hs = 2

        def sigmoid(v):
            return 1.0 / (1.0 + np.exp(-v))

        h = np.zeros(hs)
        c = np.zeros(hs)
        reference = []
        for t in range(4):
            gates = w_ih @ x[0, t] + w_hh @ h + bias
            i = sigmoid(gates[:hs])
            f = sigmoid(gates[hs : 2 * hs])
            g = np.tanh(gates[2 * hs : 3 * hs])
            o = sigmoid(gates[3 * hs :])
            c = f * c + i * g
            h = o * np.tanh(c)
            reference.append(h.copy())

        outputs, final = lstm(Tensor(x))
        assert np.allclose(outputs.numpy()[0], np.vstack(reference), atol=1e-12)
        assert np.allclose(final.numpy()[0], reference[-1], atol=1e-12)
