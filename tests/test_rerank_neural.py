"""Neural baseline tests: DLCM, PRM, SetRank, SRGA, DESA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RankingRequest, build_batch
from repro.rerank import (
    DESAReranker,
    DLCMReranker,
    PRMReranker,
    SRGAReranker,
    SetRankReranker,
    list_input_features,
)
from repro.rerank.neural import normalized_initial_scores


@pytest.fixture(scope="module")
def training_setup(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    rel = world.relevance_matrix()
    requests = []
    for _ in range(60):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=8, replace=False)
        clicks = (rng.random(8) < rel[user, items]).astype(float)
        requests.append(
            RankingRequest(
                user, items, rng.normal(size=8), clicks=clicks, fully_observed=True
            )
        )
    batch = build_batch(requests[:10], world.catalog, world.population, histories)
    return world, histories, requests, batch


ALL_MODELS = [
    (DLCMReranker, "dlcm"),
    (PRMReranker, "prm"),
    (SetRankReranker, "setrank"),
    (SRGAReranker, "srga"),
    (DESAReranker, "desa"),
]


class TestInputFeatures:
    def test_feature_layout(self, training_setup):
        world, _, _, batch = training_setup
        feats = list_input_features(batch)
        q_u = world.population.feature_dim
        q_v = world.catalog.feature_dim
        assert feats.shape == (batch.batch_size, batch.list_length, q_u + q_v + 5 + 1)
        assert np.allclose(feats[0, 0, :q_u], batch.user_features[0])

    def test_normalized_scores_zero_mean_unit_std(self, training_setup):
        _, _, _, batch = training_setup
        z = normalized_initial_scores(batch)
        assert np.allclose(z[batch.mask].reshape(batch.batch_size, -1).mean(axis=1), 0, atol=1e-9)
        assert np.allclose(z.std(axis=1), 1.0, atol=1e-6)

    def test_normalized_scores_constant_row_safe(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        request = RankingRequest(0, np.arange(4), np.ones(4))
        batch = build_batch([request], world.catalog, world.population, histories)
        z = normalized_initial_scores(batch)
        assert np.isfinite(z).all()


@pytest.mark.parametrize("cls,name", ALL_MODELS, ids=[n for _, n in ALL_MODELS])
class TestNeuralBaselines:
    def test_training_reduces_loss(self, training_setup, cls, name):
        world, histories, requests, _ = training_setup
        model = cls(hidden=8, epochs=3, batch_size=16, lr=0.02, seed=0)
        model.fit(requests, world.catalog, world.population, histories)
        assert model.name == name
        assert len(model.training_losses) == 3
        assert model.training_losses[-1] <= model.training_losses[0]

    def test_rerank_valid_permutation(self, training_setup, cls, name):
        world, histories, requests, batch = training_setup
        model = cls(hidden=8, epochs=1, batch_size=16, seed=0)
        model.fit(requests, world.catalog, world.population, histories)
        perm = model.rerank(batch)
        for row in perm:
            assert sorted(row.tolist()) == list(range(batch.list_length))

    def test_score_before_fit_raises(self, training_setup, cls, name):
        _, _, _, batch = training_setup
        with pytest.raises(RuntimeError):
            cls(hidden=8).score_batch(batch)

    def test_scoring_deterministic_at_inference(self, training_setup, cls, name):
        world, histories, requests, batch = training_setup
        model = cls(hidden=8, epochs=1, batch_size=16, seed=0)
        model.fit(requests, world.catalog, world.population, histories)
        assert np.array_equal(model.score_batch(batch), model.score_batch(batch))


class TestMaskHandling:
    def test_padded_positions_ranked_last(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        short = RankingRequest(
            0, np.arange(3), np.array([1.0, 2.0, 3.0]), clicks=np.zeros(3)
        )
        longer = RankingRequest(
            1, np.arange(6), np.arange(6.0), clicks=np.zeros(6)
        )
        batch = build_batch([short, longer], world.catalog, world.population, histories)
        model = PRMReranker(hidden=8, epochs=1, batch_size=2, seed=0)
        model.fit([short, longer], world.catalog, world.population, histories)
        perm = model.rerank(batch)
        # the padded tail of the short list must occupy the final slots
        assert set(perm[0][-3:]) == {3, 4, 5}
