"""Autograd fuzzer: determinism, smoke tier, shrinking, bug localization."""

from __future__ import annotations

import pytest

from repro.nn.tensor import Tensor
from repro.testing.fuzz import (
    OP_VOCABULARY,
    OpCall,
    Program,
    build_function,
    check_program,
    fuzz,
    generate_program,
    main,
    shrink,
)


class TestGeneration:
    def test_generation_is_a_pure_function_of_the_seed(self):
        assert generate_program(7) == generate_program(7)
        assert generate_program(7) != generate_program(8)

    def test_inputs_and_constants_are_seed_deterministic(self):
        program = generate_program(3)
        _, arrays_a = build_function(program)
        _, arrays_b = build_function(program)
        assert (arrays_a[0] == arrays_b[0]).all()

    def test_no_recurrent_flag_excludes_macro_ops(self):
        for seed in range(50):
            program = generate_program(seed, include_recurrent=False)
            names = {op.name for op in program.ops}
            assert not names & {"lstm_cell", "gru_cell", "lstm_scan", "gru_scan"}


class TestSingleOpPrograms:
    """Every vocabulary op passes the oracle in isolation — the base case
    the fuzzer's compositions build on."""

    @pytest.mark.parametrize("name", sorted(OP_VOCABULARY))
    def test_op_passes_differential_check(self, name):
        program = Program(seed=11, shape=(2, 3), ops=(OpCall(name, 1),))
        report = check_program(program)
        assert report.passed, report.format()


class TestSmokeTier:
    def test_200_seeded_programs_pass(self):
        failures = fuzz(count=200, seed_base=0)
        details = "\n\n".join(f.format() for f in failures)
        assert not failures, f"{len(failures)} fuzz failure(s):\n{details}"

    def test_cli_smoke_exit_code(self, capsys):
        assert main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "200 random programs" in out


class TestShrinking:
    def _inject_lstm_bug(self, monkeypatch):
        real = Tensor.__dict__["lstm_cell_fused"].__func__

        def buggy(*args, **kwargs):
            h, c = real(*args, **kwargs)
            inner = h._backward
            if inner is not None:

                def flipped(grad):
                    inner(-grad)

                h._backward = flipped
            return h, c

        monkeypatch.setattr(Tensor, "lstm_cell_fused", staticmethod(buggy))

    def test_shrink_finds_minimal_program_for_injected_bug(self, monkeypatch):
        self._inject_lstm_bug(monkeypatch)
        program = Program(
            seed=5,
            shape=(2, 3),
            ops=(
                OpCall("tanh"),
                OpCall("add_broadcast", 2),
                OpCall("lstm_cell", 0),
                OpCall("tanh"),
                OpCall("mean", 1),
            ),
        )
        assert not check_program(program).passed
        shrunken = shrink(program)
        # 1-minimal: exactly the broken op survives.
        assert [op.name for op in shrunken.ops] == ["lstm_cell"]
        assert not check_program(shrunken).passed

    def test_fuzz_reports_shrunken_failures(self, monkeypatch):
        self._inject_lstm_bug(monkeypatch)
        failures = fuzz(count=30, seed_base=0)
        assert failures, "injected kernel bug escaped 30 fuzz programs"
        for failure in failures:
            names = [op.name for op in failure.shrunken.ops]
            assert "lstm_cell" in names or "lstm_scan" in names
            assert len(names) <= len(failure.program.ops)
            assert not failure.shrunken_report.passed

    def test_shrink_keeps_a_passing_program_intact(self):
        program = generate_program(2)
        assert check_program(program).passed
        # A passing program has no failing subsequence to find.
        shrunken = shrink(program, is_failing=lambda p: not check_program(p).passed)
        assert shrunken == program
