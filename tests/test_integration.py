"""End-to-end integration tests on the tiny Taobao pipeline.

These check the *shape* of the paper's findings at miniature scale: trained
re-rankers improve the initial ranking, RAPID learns per-user preference
distributions, and the full model zoo runs through the harness.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.trainer import TrainConfig
from repro.data import build_batch
from repro.eval import (
    ExperimentConfig,
    evaluate_reranker,
    make_reranker,
    prepare_bundle,
)


@pytest.fixture(scope="module")
def trained_bundle():
    """A slightly larger bundle so learning effects are visible."""
    config = ExperimentConfig(
        dataset="taobao",
        scale="tiny",
        tradeoff=0.5,
        list_length=12,
        num_train_requests=400,
        num_test_requests=80,
        ranker_interactions=1500,
        hidden=8,
        train=TrainConfig(epochs=6, batch_size=32),
        seed=0,
    )
    return prepare_bundle(config)


class TestRapidEndToEnd:
    @pytest.fixture(scope="class")
    def rapid(self, trained_bundle):
        reranker = make_reranker("rapid-pro", trained_bundle)
        reranker.fit(
            trained_bundle.train_requests,
            trained_bundle.world.catalog,
            trained_bundle.world.population,
            trained_bundle.histories,
        )
        return reranker

    def test_rapid_beats_initial_ranking(self, trained_bundle, rapid):
        init = evaluate_reranker(None, trained_bundle)
        ours = evaluate_reranker(rapid, trained_bundle)
        assert ours["click@5"] > init["click@5"]
        assert ours["ndcg@5"] > init["ndcg@5"]

    def test_training_loss_decreased(self, rapid):
        assert rapid.training_losses[-1] < rapid.training_losses[0]

    def test_preference_distribution_tracks_ground_truth(
        self, trained_bundle, rapid
    ):
        """theta_hat should positively correlate with theta* (RQ5)."""
        batch = build_batch(
            trained_bundle.test_requests,
            trained_bundle.world.catalog,
            trained_bundle.world.population,
            trained_bundle.histories,
        )
        theta_hat = rapid.model.preference_distribution(batch)
        theta_star = trained_bundle.world.population.topic_preference[
            batch.user_ids
        ]
        correlations = [
            np.corrcoef(theta_hat[i], theta_star[i])[0, 1]
            for i in range(len(theta_hat))
            if theta_star[i].std() > 0
        ]
        assert np.nanmean(correlations) > 0.1

    def test_diverse_users_receive_more_diverse_lists(self, trained_bundle, rapid):
        """Personalization check: re-ranked top-5 diversity should be higher
        for users with broad tastes than for focused users."""
        from repro.metrics import topic_coverage

        world = trained_bundle.world
        batch = build_batch(
            trained_bundle.test_requests,
            world.catalog,
            world.population,
            trained_bundle.histories,
        )
        perm = rapid.rerank(batch)
        breadth = world.user_breadth[batch.user_ids]
        divs = []
        for row, request in enumerate(trained_bundle.test_requests):
            items = request.items[perm[row][:5]]
            divs.append(topic_coverage(world.catalog.coverage[items]).sum())
        divs = np.asarray(divs)
        median = np.median(breadth)
        broad = divs[breadth > median].mean()
        focused = divs[breadth <= median].mean()
        assert broad > focused


class TestAppStorePipeline:
    def test_logged_evaluation_runs(self):
        config = ExperimentConfig(
            dataset="appstore",
            scale="tiny",
            list_length=10,
            num_train_requests=120,
            num_test_requests=40,
            ranker_interactions=800,
            hidden=8,
            eval_mode="logged",
            train=TrainConfig(epochs=2, batch_size=32),
        )
        bundle = prepare_bundle(config)
        result = evaluate_reranker(None, bundle)
        assert "rev@5" in result.metrics
        assert result["rev@5"] >= 0

    def test_movielens_pipeline_runs(self):
        config = ExperimentConfig(
            dataset="movielens",
            scale="tiny",
            list_length=10,
            num_train_requests=100,
            num_test_requests=30,
            ranker_interactions=600,
            hidden=8,
            train=TrainConfig(epochs=1, batch_size=32),
        )
        bundle = prepare_bundle(config)
        rapid = make_reranker("rapid-det", bundle)
        rapid.fit(
            bundle.train_requests,
            bundle.world.catalog,
            bundle.world.population,
            bundle.histories,
        )
        result = evaluate_reranker(rapid, bundle)
        assert result["click@5"] > 0


class TestAlternativeInitialRankers:
    @pytest.mark.parametrize(
        "ranker",
        ["svmrank", pytest.param("lambdamart", marks=pytest.mark.slow)],
    )
    def test_pipeline_with_ranker(self, ranker):
        config = ExperimentConfig(
            dataset="taobao",
            scale="tiny",
            initial_ranker=ranker,
            list_length=10,
            num_train_requests=80,
            num_test_requests=30,
            ranker_interactions=500,
            hidden=8,
            train=TrainConfig(epochs=1, batch_size=32),
        )
        bundle = prepare_bundle(config)
        result = evaluate_reranker(None, bundle)
        assert result["click@5"] > 0
