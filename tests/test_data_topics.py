"""Tests for topic-coverage construction: GMM EM and the coverage builders."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.topics import (
    GaussianMixture,
    gmm_coverage,
    multihot_coverage,
    onehot_coverage,
)


def _two_blobs(rng, n=100):
    a = rng.normal([-3, -3], 0.4, size=(n, 2))
    b = rng.normal([3, 3], 0.4, size=(n, 2))
    return np.vstack([a, b])


class TestGaussianMixture:
    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(0)
        x = _two_blobs(rng)
        gmm = GaussianMixture(2, seed=0).fit(x)
        labels = gmm.predict(x)
        # All points of one blob share a label, blobs differ.
        assert len(set(labels[:100])) == 1
        assert len(set(labels[100:])) == 1
        assert labels[0] != labels[150]

    def test_means_near_blob_centers(self):
        rng = np.random.default_rng(1)
        gmm = GaussianMixture(2, seed=0).fit(_two_blobs(rng))
        centers = sorted(gmm.means_[:, 0])
        assert centers[0] == pytest.approx(-3.0, abs=0.3)
        assert centers[1] == pytest.approx(3.0, abs=0.3)

    def test_predict_proba_rows_sum_to_one(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 3))
        gmm = GaussianMixture(4, seed=0).fit(x)
        proba = gmm.predict_proba(x)
        assert proba.shape == (50, 4)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_weights_sum_to_one(self):
        rng = np.random.default_rng(3)
        gmm = GaussianMixture(3, seed=0).fit(rng.normal(size=(60, 2)))
        assert np.isclose(gmm.weights_.sum(), 1.0)

    def test_requires_fit_before_predict(self):
        with pytest.raises(RuntimeError):
            GaussianMixture(2).predict_proba(np.zeros((3, 2)))

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            GaussianMixture(5).fit(np.zeros((3, 2)))

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            GaussianMixture(2).fit(np.zeros(10))

    def test_invalid_component_count(self):
        with pytest.raises(ValueError):
            GaussianMixture(0)


class TestCoverageBuilders:
    def test_gmm_coverage_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        coverage = gmm_coverage(_two_blobs(rng, 40), 2, seed=0)
        assert coverage.shape == (80, 2)
        assert np.allclose(coverage.sum(axis=1), 1.0)

    def test_gmm_coverage_sharpening_concentrates(self):
        rng = np.random.default_rng(0)
        latent = rng.normal(size=(60, 3))
        soft = gmm_coverage(latent, 3, sharpen=1.0, seed=0)
        sharp = gmm_coverage(latent, 3, sharpen=4.0, seed=0)
        assert sharp.max(axis=1).mean() >= soft.max(axis=1).mean()

    def test_multihot_rows_normalized(self):
        coverage = multihot_coverage(50, 8, seed=0)
        assert coverage.shape == (50, 8)
        assert np.allclose(coverage.sum(axis=1), 1.0)
        counts = (coverage > 0).sum(axis=1)
        assert counts.min() >= 1 and counts.max() <= 3

    def test_multihot_invalid_ranges(self):
        with pytest.raises(ValueError):
            multihot_coverage(10, 4, min_topics=3, max_topics=2)
        with pytest.raises(ValueError):
            multihot_coverage(10, 4, min_topics=1, max_topics=5)

    @given(st.integers(1, 30), st.integers(1, 10))
    @settings(max_examples=20, deadline=None)
    def test_onehot_exactly_one_topic(self, items, topics):
        coverage = onehot_coverage(items, topics, seed=0)
        assert coverage.shape == (items, topics)
        assert np.allclose(coverage.sum(axis=1), 1.0)
        assert set(np.unique(coverage)) <= {0.0, 1.0}
