"""Heuristic baseline tests: MMR, adpMMR, DPP, SSD, PD-GAN mechanics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RankingRequest, build_batch
from repro.rerank import (
    AdaptiveMMRReranker,
    DPPReranker,
    MMRReranker,
    PDGANReranker,
    SSDReranker,
    build_dpp_kernel,
    coverage_cosine,
    diversity_propensity,
    fast_greedy_map,
    greedy_mmr,
    orthogonal_residual_norm,
)


@pytest.fixture(scope="module")
def batch_setup(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = []
    for _ in range(5):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=8, replace=False)
        clicks = (rng.random(8) < 0.3).astype(float)
        requests.append(
            RankingRequest(user, items, rng.normal(size=8), clicks=clicks)
        )
    batch = build_batch(requests, world.catalog, world.population, histories)
    return world, histories, requests, batch


def _assert_valid_permutations(perm, length):
    for row in perm:
        assert sorted(row.tolist()) == list(range(length))


class TestGreedyMMR:
    def test_pure_relevance_sorts_by_score(self):
        relevance = np.array([0.1, 0.9, 0.5])
        sim = np.eye(3)
        order = greedy_mmr(relevance, sim, tradeoff=1.0)
        assert order.tolist() == [1, 2, 0]

    def test_diversity_pushes_similar_items_down(self):
        relevance = np.array([1.0, 0.95, 0.1])
        sim = np.array(
            [[1.0, 0.99, 0.0], [0.99, 1.0, 0.0], [0.0, 0.0, 1.0]]
        )
        order = greedy_mmr(relevance, sim, tradeoff=0.5)
        # item 1 is near-duplicate of item 0 -> the dissimilar item 2 wins slot 2
        assert order.tolist() == [0, 2, 1]

    def test_invalid_positions_go_last(self):
        relevance = np.array([0.1, 0.9, 0.5])
        valid = np.array([True, False, True])
        order = greedy_mmr(relevance, np.eye(3), 1.0, valid=valid)
        assert order[-1] == 1

    def test_invalid_tradeoff_raises(self):
        with pytest.raises(ValueError):
            greedy_mmr(np.ones(2), np.eye(2), 1.5)

    def test_coverage_cosine_range(self):
        coverage = np.random.default_rng(0).random((6, 4))
        sim = coverage_cosine(coverage)
        assert sim.shape == (6, 6)
        assert np.allclose(np.diag(sim), 1.0)
        assert (sim >= -1e-12).all() and (sim <= 1 + 1e-12).all()

    def test_coverage_cosine_zero_rows_safe(self):
        sim = coverage_cosine(np.zeros((3, 4)))
        assert np.isfinite(sim).all()


class TestMMRReranker:
    def test_valid_permutations(self, batch_setup):
        _, _, _, batch = batch_setup
        perm = MMRReranker(tradeoff=0.6).rerank(batch)
        _assert_valid_permutations(perm, batch.list_length)

    def test_tradeoff_one_reproduces_score_order(self, batch_setup):
        _, _, _, batch = batch_setup
        perm = MMRReranker(tradeoff=1.0).rerank(batch)
        expected = np.argsort(-batch.initial_scores, axis=1)
        assert np.array_equal(perm, expected)


class TestAdaptiveMMR:
    def test_propensity_bounds(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        for user in range(5):
            p = diversity_propensity(
                histories[user], world.catalog.coverage, 5
            )
            assert 0.0 <= p <= 1.0

    def test_empty_history_zero_propensity(self, taobao_world):
        assert (
            diversity_propensity(np.array([]), taobao_world.catalog.coverage, 5)
            == 0.0
        )

    def test_focused_history_lower_propensity(self):
        coverage = np.eye(4)
        focused = np.zeros(20, dtype=np.int64)  # one topic repeatedly
        diverse = np.arange(20, dtype=np.int64) % 4
        assert diversity_propensity(focused, coverage, 4) < diversity_propensity(
            diverse, coverage, 4
        )

    def test_reranker_produces_valid_permutations(self, batch_setup):
        world, histories, _, batch = batch_setup
        reranker = AdaptiveMMRReranker(world.catalog, histories)
        perm = reranker.rerank(batch)
        _assert_valid_permutations(perm, batch.list_length)

    def test_invalid_tradeoff_window(self, taobao_world):
        with pytest.raises(ValueError):
            AdaptiveMMRReranker(
                taobao_world.catalog, [], min_tradeoff=0.9, max_tradeoff=0.5
            )


class TestDPP:
    def test_kernel_is_psd(self):
        rng = np.random.default_rng(0)
        kernel = build_dpp_kernel(rng.random(6), rng.random((6, 4)))
        eigenvalues = np.linalg.eigvalsh(kernel)
        assert (eigenvalues >= -1e-9).all()

    def test_greedy_map_prefers_diverse(self):
        # two near-identical high-quality items + one distinct lower-quality
        descriptors = np.array([[1.0, 0.0], [0.999, 0.001], [0.0, 1.0]])
        kernel = build_dpp_kernel(
            np.array([1.0, 0.99, 0.2]), descriptors, quality_weight=1.0
        )
        order = fast_greedy_map(kernel, max_items=2)
        assert 2 in order.tolist()

    def test_greedy_map_logdet_matches_bruteforce(self):
        """First two greedy picks must maximize the 2x2 subdeterminant greedily."""
        rng = np.random.default_rng(3)
        kernel = build_dpp_kernel(rng.random(5), rng.random((5, 3)))
        order = fast_greedy_map(kernel, max_items=2)
        first = int(np.argmax(np.diag(kernel)))
        assert order[0] == first
        gains = []
        for j in range(5):
            if j == first:
                gains.append(-np.inf)
                continue
            sub = kernel[np.ix_([first, j], [first, j])]
            gains.append(np.linalg.det(sub) / kernel[first, first])
        assert order[1] == int(np.argmax(gains))

    def test_reranker_valid_permutations(self, batch_setup):
        _, _, _, batch = batch_setup
        perm = DPPReranker().rerank(batch)
        _assert_valid_permutations(perm, batch.list_length)

    def test_reranker_increases_diversity_over_score_order(self, batch_setup):
        """DPP's top-k should cover at least as many topics as sorting by
        the initial scores alone (averaged over the batch)."""
        world, _, requests, batch = batch_setup
        from repro.metrics import div_at_k

        perm = DPPReranker(quality_weight=0.1).rerank(batch)
        score_order = np.argsort(-batch.initial_scores, axis=1)
        cov = world.catalog.coverage
        by_score = [
            cov[r.items[score_order[i][: len(r.items)]]]
            for i, r in enumerate(requests)
        ]
        by_dpp = [
            cov[r.items[perm[i][: len(r.items)]]] for i, r in enumerate(requests)
        ]
        assert div_at_k(by_dpp, 3) >= div_at_k(by_score, 3)


class TestSSD:
    def test_orthogonal_residual(self):
        basis = [np.array([1.0, 0.0])]
        assert orthogonal_residual_norm(np.array([3.0, 4.0]), basis) == pytest.approx(
            4.0
        )
        assert orthogonal_residual_norm(np.array([5.0, 0.0]), basis) == pytest.approx(
            0.0
        )

    def test_valid_permutations(self, batch_setup):
        _, _, _, batch = batch_setup
        perm = SSDReranker().rerank(batch)
        _assert_valid_permutations(perm, batch.list_length)

    def test_gamma_zero_is_pure_relevance(self, batch_setup):
        _, _, _, batch = batch_setup
        perm = SSDReranker(gamma=0.0).rerank(batch)
        expected = np.argsort(-batch.initial_scores, axis=1)
        assert np.array_equal(perm, expected)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SSDReranker(window=0)


class TestPDGAN:
    def test_fit_and_rerank(self, batch_setup):
        world, histories, requests, batch = batch_setup
        reranker = PDGANReranker(hidden=8, epochs=1, seed=0)
        reranker.fit(requests * 4, world.catalog, world.population, histories)
        perm = reranker.rerank(batch)
        _assert_valid_permutations(perm, batch.list_length)

    def test_rerank_before_fit_raises(self, batch_setup):
        _, _, _, batch = batch_setup
        with pytest.raises(RuntimeError):
            PDGANReranker().rerank(batch)
