"""Tests for the shared utilities: rng, timer, validation."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils import (
    Stopwatch,
    Timings,
    check_in_range,
    check_positive,
    check_probability_matrix,
    make_rng,
    spawn_rngs,
)


class TestRng:
    def test_make_rng_from_seed_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(7, 3)
        assert len(rngs) == 3
        draws = {rng.random() for rng in rngs}
        assert len(draws) == 3

    def test_spawn_rngs_reproducible(self):
        a = [rng.random() for rng in spawn_rngs(7, 2)]
        b = [rng.random() for rng in spawn_rngs(7, 2)]
        assert a == b


class TestTimer:
    def test_stopwatch_measures_elapsed(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.01

    def test_stopwatch_reuse_is_clean(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        first = watch.elapsed
        with watch:
            pass
        assert watch.elapsed < first  # no stale _start leaking across uses

    def test_stopwatch_nested_reentry(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
            with watch:
                pass
            inner = watch.elapsed
        assert watch.elapsed >= 0.01 > inner

    def test_stopwatch_exit_without_enter(self):
        with pytest.raises(RuntimeError):
            Stopwatch().__exit__(None, None, None)

    def test_timings_statistics(self):
        timings = Timings()
        timings.add(0.010)
        timings.add(0.030)
        assert timings.total_seconds == pytest.approx(0.04)
        assert timings.mean_ms == pytest.approx(20.0)
        assert timings.samples == pytest.approx([0.010, 0.030])

    def test_timings_p95(self):
        timings = Timings()
        for ms in range(101):  # 0..100 ms
            timings.add(ms / 1000.0)
        assert timings.p95 == pytest.approx(95.0)
        assert timings.p95 >= timings.mean_ms

    def test_empty_timings(self):
        assert Timings().mean_ms == 0.0
        assert Timings().p95 == 0.0


class TestValidation:
    def test_probability_matrix_accepts_valid(self):
        tau = np.array([[0.0, 0.5], [1.0, 0.25]])
        assert np.array_equal(check_probability_matrix(tau), tau)

    def test_probability_matrix_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[1.2, 0.0]]))
        with pytest.raises(ValueError):
            check_probability_matrix(np.array([[-0.2, 0.0]]))

    def test_probability_matrix_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_probability_matrix(np.zeros(3))

    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_check_in_range(self):
        assert check_in_range(0.5, 0.0, 1.0, "x") == 0.5
        with pytest.raises(ValueError):
            check_in_range(1.5, 0.0, 1.0, "x")
