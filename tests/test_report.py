"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.eval.report import collect_results, main, write_report


@pytest.fixture()
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "table2_taobao_lambda0.5.txt").write_text("taobao table\n")
    (directory / "theorem51_regret.txt").write_text("regret table\n")
    (directory / "misc_notes.txt").write_text("misc\n")
    return directory


class TestCollectResults:
    def test_grouping(self, results_dir):
        grouped = collect_results(results_dir)
        assert any("Table II" in title for title in grouped)
        assert any("Theorem" in title for title in grouped)
        assert "Other" in grouped

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_results(tmp_path / "nope")


class TestWriteReport:
    def test_report_contains_tables(self, results_dir, tmp_path):
        output = tmp_path / "REPORT.md"
        text = write_report(results_dir, output)
        assert output.exists()
        assert "taobao table" in text
        assert "regret table" in text
        assert text.count("```") % 2 == 0  # balanced fences

    def test_main_cli(self, results_dir, capsys):
        code = main([str(results_dir)])
        assert code == 0
        assert (results_dir / "REPORT.md").exists()
        assert "wrote" in capsys.readouterr().out
