"""Initial ranker tests: DIN, SVMRank, LambdaMART, regression trees."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rankers import (
    DINRanker,
    LambdaMARTRanker,
    RegressionTree,
    SVMRankRanker,
    pointwise_features,
)


@pytest.fixture(scope="module")
def training_setup(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    interactions = world.sample_ranker_training(1500)
    users, candidates = world.sample_candidate_sets(40, 10)
    return world, histories, interactions, users, candidates


def _top_relevance(world, users, items_sorted, k=5):
    rel = world.relevance_matrix()
    return float(
        np.mean([rel[u, row[:k]].mean() for u, row in zip(users, items_sorted)])
    )


def _random_relevance(world, users, candidates):
    rel = world.relevance_matrix()
    return float(np.mean([rel[u, c].mean() for u, c in zip(users, candidates)]))


class TestPointwiseFeatures:
    def test_dimension(self, taobao_world):
        world = taobao_world
        feats = pointwise_features(
            np.array([0, 1]), np.array([2, 3]), world.catalog, world.population
        )
        q_u = world.population.feature_dim
        q_v = world.catalog.feature_dim
        assert feats.shape == (2, q_u + q_v + 5 + q_u * q_v)

    def test_cross_term_is_outer_product(self, taobao_world):
        world = taobao_world
        feats = pointwise_features(
            np.array([0]), np.array([1]), world.catalog, world.population
        )
        q_u = world.population.feature_dim
        q_v = world.catalog.feature_dim
        cross = feats[0, q_u + q_v + 5 :].reshape(q_u, q_v)
        expected = np.outer(
            world.population.features[0], world.catalog.features[1]
        )
        assert np.allclose(cross, expected)


@pytest.mark.parametrize(
    "make_ranker",
    [
        lambda: SVMRankRanker(epochs=3, seed=0),
        pytest.param(
            lambda: LambdaMARTRanker(num_trees=8), marks=pytest.mark.slow
        ),
        lambda: DINRanker(epochs=2, seed=0),
    ],
    ids=["svmrank", "lambdamart", "din"],
)
class TestRankersLearnSignal:
    def test_top_items_beat_random(self, training_setup, make_ranker):
        world, histories, interactions, users, candidates = training_setup
        ranker = make_ranker()
        ranker.fit(interactions, world.catalog, world.population, histories=histories)
        items, scores = ranker.rank(
            users, candidates, world.catalog, world.population, histories=histories
        )
        assert items.shape == candidates.shape
        # scores must be sorted descending per row
        assert (np.diff(scores, axis=1) <= 1e-9).all()
        top = _top_relevance(world, users, items)
        baseline = _random_relevance(world, users, candidates)
        assert top > baseline + 0.01

    def test_score_before_fit_raises(self, training_setup, make_ranker):
        world, histories, _, users, candidates = training_setup
        with pytest.raises(RuntimeError):
            make_ranker().score(
                users, candidates, world.catalog, world.population, histories=histories
            )


class TestDIN:
    def test_requires_histories(self, training_setup):
        world, _, interactions, _, _ = training_setup
        with pytest.raises(ValueError):
            DINRanker(epochs=1).fit(interactions, world.catalog, world.population)


class TestSVMRank:
    def test_invalid_c(self):
        with pytest.raises(ValueError):
            SVMRankRanker(c=0.0)


class TestLambdaMART:
    def test_requires_mixed_labels(self, taobao_world):
        world = taobao_world
        interactions = np.array([[0, 1, 1], [0, 2, 1]])  # all positive
        with pytest.raises(ValueError):
            LambdaMARTRanker(num_trees=2).fit(
                interactions, world.catalog, world.population
            )

    def test_lambda_gradients_push_positives_up(self):
        scores = np.array([0.0, 0.0, 0.0])
        labels = np.array([1.0, 0.0, 0.0])
        lambdas = LambdaMARTRanker._lambdas(scores, labels, sigma=1.0)
        assert lambdas[0] > 0
        assert lambdas[1] < 0 and lambdas[2] < 0
        assert lambdas.sum() == pytest.approx(0.0, abs=1e-12)

    def test_invalid_tree_count(self):
        with pytest.raises(ValueError):
            LambdaMARTRanker(num_trees=0)


class TestRegressionTree:
    def test_fits_step_function(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(300, 2))
        y = np.where(x[:, 0] > 0.0, 2.0, -2.0)
        tree = RegressionTree(max_depth=3).fit(x, y)
        pred = tree.predict(x)
        # quantile thresholds may miss the exact boundary; allow a few
        # boundary points to be misassigned
        assert np.mean((pred - y) ** 2) < 0.5

    def test_depth_one_is_single_split(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(size=(100, 1))
        y = x[:, 0]
        tree = RegressionTree(max_depth=1).fit(x, y)
        assert len(np.unique(tree.predict(x))) <= 2

    def test_constant_target_single_leaf(self):
        x = np.random.default_rng(2).uniform(size=(50, 3))
        tree = RegressionTree().fit(x, np.ones(50))
        assert np.allclose(tree.predict(x), 1.0)

    def test_weights_bias_leaf_values(self):
        x = np.zeros((4, 1))  # no split possible
        y = np.array([0.0, 0.0, 10.0, 10.0])
        w = np.array([1.0, 1.0, 3.0, 3.0])
        tree = RegressionTree().fit(x, y, weights=w)
        assert tree.predict(np.zeros((1, 1)))[0] == pytest.approx(7.5)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)
