"""Sampling-profiler tests: deterministic sampling, exports, lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import profiler as profiler_module
from repro.obs.profiler import SamplingProfiler, get_profiler, sampling_profile


@pytest.fixture(autouse=True)
def _no_global_profiler():
    """Leave the module-global profiler stopped and cleared around each test."""
    yield
    if profiler_module._GLOBAL_PROFILER is not None:
        profiler_module._GLOBAL_PROFILER.stop()
        profiler_module._GLOBAL_PROFILER = None


def _marker_function_for_profiler_test(stop: threading.Event) -> None:
    while not stop.wait(0.001):
        pass


class TestSampling:
    def test_sample_once_captures_named_frame(self):
        profiler = SamplingProfiler()
        stop = threading.Event()
        thread = threading.Thread(
            target=_marker_function_for_profiler_test, args=(stop,)
        )
        thread.start()
        try:
            for _ in range(3):
                profiler.sample_once(skip_thread=threading.get_ident())
        finally:
            stop.set()
            thread.join()
        assert profiler.samples >= 3
        assert any(
            "_marker_function_for_profiler_test" in frame
            for stack, _ in profiler.stack_counts()
            for frame in stack
        )

    def test_background_thread_collects_samples(self):
        stop = threading.Event()
        thread = threading.Thread(
            target=_marker_function_for_profiler_test, args=(stop,)
        )
        thread.start()
        try:
            profiler = SamplingProfiler(hz=200.0).start()
            assert profiler.running
            deadline = time.monotonic() + 5.0
            while profiler.samples == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            profiler.stop()
        finally:
            stop.set()
            thread.join()
        assert not profiler.running
        assert profiler.samples > 0
        assert profiler.elapsed_s > 0.0

    def test_stopped_profiler_is_inert(self):
        profiler = SamplingProfiler()
        assert not profiler.running
        profiler.stop()  # idempotent on a never-started profiler
        assert profiler.samples == 0

    def test_reset_clears_counts(self):
        profiler = SamplingProfiler()
        profiler.sample_once()
        assert profiler.samples > 0
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.stack_counts() == []

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.0)


class TestExports:
    def _profiled(self) -> SamplingProfiler:
        profiler = SamplingProfiler()
        profiler.sample_once()
        return profiler

    def test_collapsed_format(self):
        profiler = self._profiled()
        lines = profiler.collapsed().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert int(count) >= 1
            assert ";" in stack or stack  # root;...;leaf chain

    def test_write_collapsed(self, tmp_path):
        profiler = self._profiled()
        path = profiler.write_collapsed(tmp_path / "profile.folded")
        assert path.read_text().strip() == profiler.collapsed().strip()

    def test_top_functions_aggregates_leaves(self):
        profiler = self._profiled()
        top = profiler.top_functions(5)
        assert top
        assert sum(count for _, count in top) <= profiler.samples
        assert top == sorted(top, key=lambda kv: kv[1], reverse=True)

    def test_format_top_mentions_sample_count(self):
        profiler = self._profiled()
        assert f"{profiler.samples} samples" in profiler.format_top()


class TestGlobalLifecycle:
    def test_sampling_profile_context_runs_and_stops(self):
        with sampling_profile(hz=200.0) as profiler:
            assert profiler.running
            deadline = time.monotonic() + 5.0
            while profiler.samples == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert not profiler.running
        assert get_profiler() is profiler
        assert profiler.samples > 0

    def test_get_profiler_none_until_started(self):
        assert get_profiler() is None
