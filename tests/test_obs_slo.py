"""SLO burn-rate monitor tests: math, transitions, telemetry, serving wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import RankingRequest, build_batch
from repro.obs.metrics import MetricsRegistry
from repro.obs.runlog import MemorySink, RunLogger
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    SLO,
    BurnWindow,
    SLOMonitor,
    SLO_STATE_CODES,
    serving_slo,
)
from repro.rerank import MMRReranker
from repro.resilience.degrade import ResilientReranker


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _monitor(
    target: float = 0.99,
    min_events: int = 1,
    latency_threshold_ms: float | None = None,
    **kwargs,
) -> tuple[SLOMonitor, FakeClock, MetricsRegistry, MemorySink]:
    clock = FakeClock()
    registry = MetricsRegistry()
    sink = MemorySink()
    monitor = SLOMonitor(
        SLO(
            name="t",
            target=target,
            latency_threshold_ms=latency_threshold_ms,
        ),
        min_events=min_events,
        clock=clock,
        registry=registry,
        logger=RunLogger(sink),
        **kwargs,
    )
    return monitor, clock, registry, sink


class TestDeclarations:
    def test_target_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            SLO(name="x", target=1.0)
        with pytest.raises(ValueError):
            SLO(name="x", target=0.0)
        assert SLO(name="x", target=0.999).error_budget == pytest.approx(0.001)

    def test_burn_window_validation(self):
        with pytest.raises(ValueError):
            BurnWindow(severity="ok", long_s=300, short_s=60, max_burn_rate=1.0)
        with pytest.raises(ValueError):
            BurnWindow(severity="page", long_s=60, short_s=60, max_burn_rate=1.0)

    def test_monitor_requires_windows(self):
        with pytest.raises(ValueError):
            SLOMonitor(SLO(name="x"), burn_windows=())


class TestBurnRateMath:
    def test_burn_rate_is_bad_fraction_over_budget(self):
        monitor, _, _, _ = _monitor(target=0.99)
        for _ in range(98):
            monitor.record()
        for _ in range(2):
            monitor.record(error=True)
        # 2% bad against a 1% budget burns at 2x, in every window.
        for window_s in (60.0, 300.0, 1800.0):
            assert monitor.bad_fraction(window_s) == pytest.approx(0.02)
            assert monitor.burn_rate(window_s) == pytest.approx(2.0)

    def test_min_events_guards_cold_windows(self):
        monitor, _, _, _ = _monitor(min_events=20)
        monitor.record(error=True)  # 100% bad but only 1 event
        assert monitor.bad_fraction(300.0) == 0.0
        assert monitor.evaluate().state == "ok"

    def test_latency_threshold_classifies_slow_requests_bad(self):
        monitor, _, _, _ = _monitor(latency_threshold_ms=50.0)
        monitor.record(latency_ms=10.0)
        monitor.record(latency_ms=80.0)
        assert monitor.bad_fraction(300.0) == pytest.approx(0.5)

    def test_old_outcomes_age_out(self):
        monitor, clock, _, _ = _monitor()
        for _ in range(10):
            monitor.record(error=True)
        assert monitor.burn_rate(60.0) > 0.0
        clock.advance(70.0)  # past the short window (+ its bucket span)
        assert monitor.burn_rate(60.0) == 0.0
        assert monitor.burn_rate(1800.0) > 0.0  # still inside the long one


class TestTransitions:
    def test_page_requires_both_windows_then_resolves(self):
        monitor, clock, registry, sink = _monitor(target=0.99)
        state_gauge = registry.gauge("obs.slo.state", slo="t")

        # Hard outage: 100% bad burns at 100x in both page windows.
        for _ in range(30):
            monitor.record(error=True)
            clock.advance(1.0)
        status = monitor.evaluate()
        assert status.state == "page"
        assert state_gauge.value == SLO_STATE_CODES["page"]
        alerts = sink.events("slo.alert")
        assert len(alerts) == 1
        assert alerts[0]["severity"] == "page"
        assert alerts[0]["burn_rate_long"] > 14.4

        # Recovery: the page rule's 60s confirmation window clears first;
        # once it does, paging stops even though the 300s signal window is
        # still hot — that is the whole point of the short confirmation.
        # The warn rule (1800s/300s) is still burning, so state demotes to
        # warn rather than jumping straight to ok.
        clock.advance(70.0)
        assert monitor.burn_rate(60.0) == 0.0
        assert monitor.burn_rate(300.0) > 14.4
        status = monitor.evaluate()
        assert status.state == "warn"
        assert state_gauge.value == SLO_STATE_CODES["warn"]
        assert sink.events("slo.alert")[-1]["severity"] == "warn"

        # Once the warn rule's 300s confirmation window clears too, the
        # monitor resolves even with the 1800s window still full of bads.
        clock.advance(300.0)
        assert monitor.burn_rate(300.0) == 0.0
        assert monitor.burn_rate(1800.0) > 6.0
        status = monitor.evaluate()
        assert status.state == "ok"
        assert state_gauge.value == SLO_STATE_CODES["ok"]
        assert len(sink.events("slo.resolve")) == 1

    def test_no_duplicate_alerts_while_state_holds(self):
        monitor, clock, _, sink = _monitor()
        for _ in range(30):
            monitor.record(error=True)
            clock.advance(1.0)
        monitor.evaluate()
        monitor.evaluate()
        monitor.evaluate()
        assert len(sink.events("slo.alert")) == 1

    def test_burn_rate_gauges_published_per_window(self):
        monitor, clock, registry, _ = _monitor()
        for _ in range(10):
            monitor.record()
            clock.advance(1.0)
        monitor.evaluate()
        windows = {
            s["labels"]["window"]
            for s in registry.collect()
            if s["name"] == "obs.slo.burn_rate"
        }
        expected = {
            f"{w:g}s"
            for rule in DEFAULT_BURN_WINDOWS
            for w in (rule.long_s, rule.short_s)
        }
        assert windows == expected


class TestServingWiring:
    def test_serving_slo_defaults(self):
        monitor = serving_slo()
        assert monitor.slo.latency_threshold_ms == 50.0
        assert monitor.min_events == 20
        assert monitor.slo.target == pytest.approx(0.99)

    def test_resilient_reranker_records_into_monitor(self, taobao_world):
        world = taobao_world
        histories = world.sample_histories()
        rng = np.random.default_rng(0)
        requests = [
            RankingRequest(
                int(rng.integers(world.config.num_users)),
                rng.choice(world.config.num_items, size=8, replace=False),
                rng.normal(size=8),
            )
            for _ in range(4)
        ]
        batch = build_batch(requests, world.catalog, world.population, histories)
        monitor, _, registry, _ = _monitor(
            latency_threshold_ms=10_000.0, min_events=1
        )
        wrapped = ResilientReranker(
            MMRReranker(), fallbacks=[], deadline_ms=None, slo_monitor=monitor
        )
        result = wrapped.rerank(batch)
        assert isinstance(result, np.ndarray)
        # One healthy primary-served request: recorded good + evaluated.
        good, bad = monitor._window_counts(300.0)
        assert (good, bad) == (1.0, 0.0)
        assert monitor.state == "ok"
        states = [
            s for s in registry.collect() if s["name"] == "obs.slo.state"
        ]
        assert states and states[0]["value"] == SLO_STATE_CODES["ok"]
