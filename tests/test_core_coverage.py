"""Property-based tests for the coverage math of Eq. 4-5."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import incremental_coverage, marginal_diversity, probabilistic_coverage

coverage_matrices = arrays(
    np.float64,
    st.tuples(st.integers(1, 8), st.integers(1, 5)),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)


class TestProbabilisticCoverage:
    def test_single_item_is_its_tau(self):
        tau = np.array([[0.3, 0.7]])
        assert np.allclose(probabilistic_coverage(tau), [0.3, 0.7])

    def test_batched(self):
        tau = np.random.default_rng(0).random((4, 6, 3))
        out = probabilistic_coverage(tau)
        assert out.shape == (4, 3)

    @given(coverage_matrices)
    @settings(max_examples=50, deadline=None)
    def test_monotone_under_item_addition(self, tau):
        """Adding an item never decreases coverage (monotonicity)."""
        if len(tau) < 2:
            return
        smaller = probabilistic_coverage(tau[:-1])
        larger = probabilistic_coverage(tau)
        assert (larger >= smaller - 1e-12).all()

    @given(coverage_matrices)
    @settings(max_examples=50, deadline=None)
    def test_submodularity(self, tau):
        """Marginal gain of an item shrinks as the base set grows."""
        if len(tau) < 3:
            return
        new_item = tau[-1:]
        small_base = tau[:1]
        big_base = tau[:-1]
        gain_small = probabilistic_coverage(
            np.vstack([small_base, new_item])
        ) - probabilistic_coverage(small_base)
        gain_big = probabilistic_coverage(
            np.vstack([big_base, new_item])
        ) - probabilistic_coverage(big_base)
        assert (gain_small >= gain_big - 1e-12).all()

    @given(coverage_matrices)
    @settings(max_examples=50, deadline=None)
    def test_bounded_unit_interval(self, tau):
        out = probabilistic_coverage(tau)
        assert ((out >= -1e-12) & (out <= 1.0 + 1e-12)).all()


class TestMarginalDiversity:
    def test_leave_one_out_identity(self):
        """d[i] = c(R) - c(R \\ {i}) exactly, for every i."""
        rng = np.random.default_rng(0)
        tau = rng.random((6, 4))
        d = marginal_diversity(tau)
        full = probabilistic_coverage(tau)
        for i in range(6):
            without = probabilistic_coverage(np.delete(tau, i, axis=0))
            assert np.allclose(d[i], full - without, atol=1e-12)

    def test_handles_certain_coverage(self):
        """tau = 1 rows must not produce NaN/inf (no division used)."""
        tau = np.array([[1.0, 0.0], [1.0, 0.5], [0.0, 1.0]])
        d = marginal_diversity(tau)
        assert np.isfinite(d).all()
        # duplicated certain topic -> zero marginal for both copies
        assert d[0, 0] == 0.0
        assert d[1, 0] == 0.0

    def test_unique_topic_item_gets_full_marginal(self):
        tau = np.array([[1.0, 0.0], [0.0, 1.0]])
        d = marginal_diversity(tau)
        assert np.allclose(d, np.eye(2))

    def test_batched_matches_loop(self):
        rng = np.random.default_rng(1)
        tau = rng.random((3, 5, 2))
        batched = marginal_diversity(tau)
        for b in range(3):
            assert np.allclose(batched[b], marginal_diversity(tau[b]))

    @given(coverage_matrices)
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, tau):
        d = marginal_diversity(tau)
        assert ((d >= -1e-12) & (d <= 1.0 + 1e-12)).all()


class TestIncrementalCoverage:
    def test_matches_sequential_definition(self):
        rng = np.random.default_rng(2)
        tau = rng.random((5, 3))
        zeta = incremental_coverage(tau)
        for k in range(5):
            gain = probabilistic_coverage(tau[: k + 1]) - (
                probabilistic_coverage(tau[:k]) if k else 0.0
            )
            assert np.allclose(zeta[k], gain, atol=1e-12)

    def test_sums_to_total_coverage(self):
        rng = np.random.default_rng(3)
        tau = rng.random((7, 4))
        assert np.allclose(
            incremental_coverage(tau).sum(axis=0), probabilistic_coverage(tau)
        )

    def test_first_position_full_tau(self):
        tau = np.random.default_rng(4).random((4, 2))
        assert np.allclose(incremental_coverage(tau)[0], tau[0])

    def test_batched(self):
        tau = np.random.default_rng(5).random((2, 4, 3))
        out = incremental_coverage(tau)
        assert out.shape == (2, 4, 3)
        assert np.allclose(out[0], incremental_coverage(tau[0]))
