"""Deeper eval-pipeline tests: batching chunks, metric consistency,
factory wiring details."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.eval import evaluate_reranker, make_reranker
from repro.eval.experiment import EvaluationResult


class TestEvaluationChunking:
    def test_chunked_evaluation_matches_single_batch(self, tiny_bundle):
        """Evaluating in small chunks must give identical metrics."""
        whole = evaluate_reranker(None, tiny_bundle, eval_batch_size=10_000)
        chunked = evaluate_reranker(None, tiny_bundle, eval_batch_size=7)
        for metric, value in whole.metrics.items():
            assert chunked[metric] == pytest.approx(value)

    def test_custom_ks(self, tiny_bundle):
        result = evaluate_reranker(None, tiny_bundle, ks=(3,))
        assert "click@3" in result.metrics
        assert "click@5" not in result.metrics


class TestMetricConsistency:
    def test_expected_clicks_monotone_in_k(self, tiny_bundle):
        result = evaluate_reranker(None, tiny_bundle)
        assert result["click@10"] >= result["click@5"]
        assert result["div@10"] >= result["div@5"]
        assert result["satis@10"] >= result["satis@5"]

    def test_reranking_does_not_change_div_at_full_length(self, tiny_bundle):
        """div@L is permutation-invariant: the same items are covered."""
        length = tiny_bundle.config.list_length
        init = evaluate_reranker(None, tiny_bundle, ks=(length,))
        mmr = evaluate_reranker(
            make_reranker("mmr", tiny_bundle), tiny_bundle, ks=(length,)
        )
        assert mmr[f"div@{length}"] == pytest.approx(init[f"div@{length}"])

    def test_expected_click_rows_bounded_by_attraction(self, tiny_bundle):
        """Expected per-position clicks are attraction times examination,
        so click@L <= sum of attraction probabilities."""
        length = tiny_bundle.config.list_length
        result = evaluate_reranker(None, tiny_bundle, ks=(length,))
        phi_sums = [
            tiny_bundle.click_model.attraction_probabilities(
                r.user_id, r.items
            ).sum()
            for r in tiny_bundle.test_requests
        ]
        assert result[f"click@{length}"] <= np.mean(phi_sums) + 1e-9


class TestResultContainer:
    def test_getitem(self):
        result = EvaluationResult(metrics={"click@5": 1.5})
        assert result["click@5"] == 1.5
        with pytest.raises(KeyError):
            result["click@99"]


class TestFactoryWiring:
    def test_neural_models_inherit_train_config(self, tiny_bundle):
        config = tiny_bundle.config
        new_train = dataclasses.replace(config.train, epochs=7, lr=0.123)
        tiny_bundle.config = dataclasses.replace(config, train=new_train)
        try:
            prm = make_reranker("prm", tiny_bundle)
            assert prm.epochs == 7
            assert prm.lr == pytest.approx(0.123)
            rapid = make_reranker("rapid-pro", tiny_bundle)
            assert rapid.train_config.epochs == 7
        finally:
            tiny_bundle.config = config

    def test_adpmmr_gets_histories(self, tiny_bundle):
        adp = make_reranker("adpmmr", tiny_bundle)
        assert adp.histories is tiny_bundle.histories

    def test_rapid_dims_match_world(self, tiny_bundle):
        rapid = make_reranker("rapid-det", tiny_bundle)
        config = rapid.model.config
        assert config.user_dim == tiny_bundle.world.population.feature_dim
        assert config.num_topics == tiny_bundle.world.catalog.num_topics
