"""Golden-slate regression suite over every re-ranker in the comparison.

Metric assertions tolerate silent slate drift; these tests pin the actual
outputs — permutations (exact) and scores (tolerance-aware) — for a fixed
seeded tiny taobao world.  Any behavioral change shows up as a reviewable
JSON diff under ``tests/golden/`` after::

    PYTHONPATH=src python -m pytest tests/test_golden_rerankers.py --update-golden
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.data import build_batch
from repro.eval import make_reranker
from repro.nn import inference
from repro.serve import ManualClock, RerankService, ServeRequest, ServingTenant

# Every model of the paper's comparison table with reproducible output:
# the 11 baseline re-rankers plus the full RAPID model.
MODELS = [
    "mmr",
    "dpp",
    "ssd",
    "adpmmr",
    "dlcm",
    "prm",
    "setrank",
    "srga",
    "desa",
    "seq2slate",
    "pdgan",
    "rapid-pro",
]

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def golden_batch(tiny_bundle):
    # A handful of requests keeps the JSON snapshots reviewable while still
    # exercising padding (lists are capped at list_length).
    return build_batch(
        tiny_bundle.test_requests[:6],
        tiny_bundle.world.catalog,
        tiny_bundle.world.population,
        tiny_bundle.histories,
    )


@pytest.fixture(scope="module")
def fitted_reranker(tiny_bundle):
    cache = {}

    def get(name: str):
        if name not in cache:
            reranker = make_reranker(name, tiny_bundle)
            reranker.fit(
                tiny_bundle.train_requests,
                tiny_bundle.world.catalog,
                tiny_bundle.world.population,
                tiny_bundle.histories,
            )
            cache[name] = reranker
        return cache[name]

    return get


@pytest.mark.parametrize("name", MODELS)
def test_reranker_matches_golden_slate(name, fitted_reranker, golden_batch,
                                       golden_store):
    # The snapshots pin the float64 tape path: this is the REPRO_NN_INFER=0
    # bit-identity contract.  Fast-path parity against the tape path is
    # asserted separately (test_inference_matches_tape_slate below and
    # tests/test_nn_inference.py).
    reranker = fitted_reranker(name)
    with inference.use_infer(False):
        perm = reranker.rerank(golden_batch)
        # In-process stability: inference must be deterministic before a
        # cross-run snapshot can mean anything.
        perm_again = reranker.rerank(golden_batch)
        assert (perm == perm_again).all(), f"{name} rerank is nondeterministic"

        payload = {"permutations": perm}
        try:
            scores = np.asarray(
                reranker.score_batch(golden_batch), dtype=np.float64
            )
        except NotImplementedError:
            pass  # slate-construction models (MMR/DPP/SSD/...) have no scores
        else:
            payload["scores"] = scores
    golden_store.check(f"reranker_{name}", payload)


@pytest.mark.parametrize("name", MODELS)
def test_inference_matches_tape_slate(name, fitted_reranker, golden_batch):
    """The tape-free path must pick the exact same item ids as the tape.

    Baselines without a hand-written ndarray path run Module.infer (float64,
    bitwise identical); RAPID runs float32 end-to-end, so its scores may
    drift within float32 epsilon but the resulting slate must not.
    """
    reranker = fitted_reranker(name)
    with inference.use_infer(False):
        tape_perm = reranker.rerank(golden_batch)
    with inference.use_infer(True):
        fast_perm = reranker.rerank(golden_batch)
    assert (tape_perm == fast_perm).all(), (
        f"{name}: inference-path slate differs from tape-path slate"
    )
    try:
        with inference.use_infer(False):
            tape_scores = np.asarray(
                reranker.score_batch(golden_batch), dtype=np.float64
            )
        with inference.use_infer(True):
            fast_scores = np.asarray(
                reranker.score_batch(golden_batch), dtype=np.float64
            )
    except NotImplementedError:
        return
    assert fast_scores.dtype == np.float64
    # Scores live in (0, 1) (sigmoid outputs) or modest logit ranges; a
    # 1e-5 absolute budget is ~100x float32 eps headroom at these scales.
    np.testing.assert_allclose(fast_scores, tape_scores, rtol=0, atol=1e-5)


@pytest.mark.serve
@pytest.mark.parametrize("name", MODELS)
def test_served_slate_matches_direct_rerank(name, fitted_reranker, tiny_bundle):
    """The serving layer's bitwise contract, for every model in the table.

    Each golden request is submitted to a coalescing
    :class:`~repro.serve.service.RerankService` (all six share one forward
    batch) and the served slate must equal calling ``Reranker.rerank``
    directly on that request alone — batching across users, padding, and
    the service plumbing may not change a single served position.
    """
    reranker = fitted_reranker(name)
    bundle = tiny_bundle
    requests = bundle.test_requests[:6]
    by_length: dict[int, list] = {}
    for request in requests:
        by_length.setdefault(request.list_length, []).append(request)

    clock = ManualClock()
    tenant = ServingTenant(
        reranker,
        bundle.world.catalog,
        bundle.world.population,
        list(bundle.histories),
    )
    service = RerankService(
        tenant, cache=None, max_batch_size=len(requests), clock=clock
    )

    async def serve_all():
        tasks = [
            asyncio.create_task(
                service.rerank(
                    ServeRequest(r.user_id, r.items, r.initial_scores)
                )
            )
            for r in requests
        ]
        while not all(t.done() for t in tasks):
            await service.drain()
        return await asyncio.gather(*tasks)

    results = asyncio.run(serve_all())
    for request, result in zip(requests, results):
        # Equal-length requests coalesced into one forward pass.
        assert result.batch_size == len(by_length[request.list_length])
        direct = reranker.rerank(
            build_batch(
                [request],
                bundle.world.catalog,
                bundle.world.population,
                bundle.histories,
            )
        )[0]
        assert (result.permutation == direct).all(), (
            f"{name}: served slate differs from direct rerank"
        )


def test_every_model_in_comparison_is_snapshotted(golden_store):
    """New models must join the golden suite: the factory's model list and
    MODELS may only differ by the trivial identity ranker."""
    from repro.eval.experiment import make_reranker as factory  # noqa: F401

    missing = [m for m in MODELS if not golden_store.update
               and not golden_store.path_for(f"reranker_{m}").exists()]
    assert not missing, (
        f"no golden snapshot for {missing}; run pytest --update-golden"
    )
