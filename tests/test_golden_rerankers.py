"""Golden-slate regression suite over every re-ranker in the comparison.

Metric assertions tolerate silent slate drift; these tests pin the actual
outputs — permutations (exact) and scores (tolerance-aware) — for a fixed
seeded tiny taobao world.  Any behavioral change shows up as a reviewable
JSON diff under ``tests/golden/`` after::

    PYTHONPATH=src python -m pytest tests/test_golden_rerankers.py --update-golden
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_batch
from repro.eval import make_reranker

# Every model of the paper's comparison table with reproducible output:
# the 11 baseline re-rankers plus the full RAPID model.
MODELS = [
    "mmr",
    "dpp",
    "ssd",
    "adpmmr",
    "dlcm",
    "prm",
    "setrank",
    "srga",
    "desa",
    "seq2slate",
    "pdgan",
    "rapid-pro",
]

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def golden_batch(tiny_bundle):
    # A handful of requests keeps the JSON snapshots reviewable while still
    # exercising padding (lists are capped at list_length).
    return build_batch(
        tiny_bundle.test_requests[:6],
        tiny_bundle.world.catalog,
        tiny_bundle.world.population,
        tiny_bundle.histories,
    )


@pytest.fixture(scope="module")
def fitted_reranker(tiny_bundle):
    cache = {}

    def get(name: str):
        if name not in cache:
            reranker = make_reranker(name, tiny_bundle)
            reranker.fit(
                tiny_bundle.train_requests,
                tiny_bundle.world.catalog,
                tiny_bundle.world.population,
                tiny_bundle.histories,
            )
            cache[name] = reranker
        return cache[name]

    return get


@pytest.mark.parametrize("name", MODELS)
def test_reranker_matches_golden_slate(name, fitted_reranker, golden_batch,
                                       golden_store):
    reranker = fitted_reranker(name)
    perm = reranker.rerank(golden_batch)
    # In-process stability: inference must be deterministic before a
    # cross-run snapshot can mean anything.
    perm_again = reranker.rerank(golden_batch)
    assert (perm == perm_again).all(), f"{name} rerank is nondeterministic"

    payload = {"permutations": perm}
    try:
        scores = np.asarray(reranker.score_batch(golden_batch), dtype=np.float64)
    except NotImplementedError:
        pass  # slate-construction models (MMR/DPP/SSD/...) have no scores
    else:
        payload["scores"] = scores
    golden_store.check(f"reranker_{name}", payload)


def test_every_model_in_comparison_is_snapshotted(golden_store):
    """New models must join the golden suite: the factory's model list and
    MODELS may only differ by the trivial identity ranker."""
    from repro.eval.experiment import make_reranker as factory  # noqa: F401

    missing = [m for m in MODELS if not golden_store.update
               and not golden_store.path_for(f"reranker_{m}").exists()]
    assert not missing, (
        f"no golden snapshot for {missing}; run pytest --update-golden"
    )
