"""Tests for dataset splitters."""

from __future__ import annotations

import pytest

from repro.data import ratio_split, train_test_split


class TestTrainTestSplit:
    def test_partition_sizes(self):
        train, test = train_test_split(list(range(100)), test_fraction=0.2, seed=0)
        assert len(train) == 80
        assert len(test) == 20
        assert sorted(train + test) == list(range(100))

    def test_reproducible(self):
        a = train_test_split(list(range(50)), seed=7)
        b = train_test_split(list(range(50)), seed=7)
        assert a == b

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2, 3], test_fraction=0.0)

    def test_degenerate_split_raises(self):
        with pytest.raises(ValueError):
            train_test_split([1], test_fraction=0.5)


class TestRatioSplit:
    def test_paper_ratio(self):
        pieces = ratio_split(list(range(100)), [2, 3, 4, 1])
        assert [len(p) for p in pieces] == [20, 30, 40, 10]
        assert sum(pieces, []) == list(range(100))

    def test_every_partition_nonempty(self):
        pieces = ratio_split(list(range(5)), [1, 1, 1, 1, 1])
        assert all(len(p) >= 1 for p in pieces)

    def test_order_preserved(self):
        pieces = ratio_split(list(range(10)), [1, 1])
        assert pieces[0] == list(range(5))
        assert pieces[1] == list(range(5, 10))

    def test_too_few_items_raise(self):
        with pytest.raises(ValueError):
            ratio_split([1, 2], [1, 1, 1])

    def test_nonpositive_ratio_raises(self):
        with pytest.raises(ValueError):
            ratio_split([1, 2, 3], [1, 0])
