"""Training smoke tests for every RAPID variant (losses must decrease)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RAPID_VARIANTS, RapidConfig, RapidReranker, TrainConfig
from repro.data import RankingRequest


@pytest.fixture(scope="module")
def training_data(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    rel = world.relevance_matrix()
    requests = []
    for _ in range(60):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=8, replace=False)
        clicks = (rng.random(8) < rel[user, items]).astype(float)
        requests.append(
            RankingRequest(
                user, items, rng.normal(size=8), clicks=clicks, fully_observed=True
            )
        )
    return world, histories, requests


@pytest.mark.parametrize("variant", sorted(RAPID_VARIANTS))
class TestVariantTraining:
    def test_loss_decreases(self, training_data, variant):
        world, histories, requests = training_data
        config = RapidConfig(
            user_dim=world.population.feature_dim,
            item_dim=world.catalog.feature_dim,
            num_topics=world.catalog.num_topics,
            hidden=8,
            seed=0,
        )
        reranker = RapidReranker(
            config, variant, TrainConfig(epochs=3, batch_size=16, lr=0.02)
        )
        reranker.fit(requests, world.catalog, world.population, histories)
        assert reranker.training_losses[-1] < reranker.training_losses[0]

    def test_scores_finite_after_training(self, training_data, variant):
        from repro.data import build_batch

        world, histories, requests = training_data
        config = RapidConfig(
            user_dim=world.population.feature_dim,
            item_dim=world.catalog.feature_dim,
            num_topics=world.catalog.num_topics,
            hidden=8,
            seed=0,
        )
        reranker = RapidReranker(
            config, variant, TrainConfig(epochs=1, batch_size=16)
        )
        reranker.fit(requests, world.catalog, world.population, histories)
        batch = build_batch(
            requests[:6], world.catalog, world.population, histories
        )
        scores = reranker.score_batch(batch)
        assert np.isfinite(scores).all()
        assert ((scores >= 0) & (scores <= 1)).all()
