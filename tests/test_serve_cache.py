"""Slate-cache tests: brute-force oracle, collisions, TTL, invalidation.

The property suite drives random interleavings of get / put /
history-update / TTL-advance against an oracle that stores full keys in
a plain dict with timestamps — no hashing, no capacity — and asserts the
cache agrees on every lookup (capacity is lifted for those runs so LRU
eviction, which the oracle doesn't model, can't fire).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import get_registry
from repro.serve import ManualClock, SlateCache

pytestmark = pytest.mark.serve

TTL = 5.0


def _request(rng, user_pool=4, item_pool=30, length=4):
    user = int(rng.integers(user_pool))
    items = rng.choice(item_pool, size=length, replace=False)
    scores = np.round(rng.normal(size=length), 3)
    return user, items, scores


def _slate(rng, length=4):
    return rng.permutation(length)


class TestBasics:
    def test_put_get_round_trip_and_copy_isolation(self):
        clock = ManualClock()
        cache = SlateCache(clock=clock)
        items = np.array([3, 1, 2])
        scores = np.array([0.3, 0.1, 0.2])
        slate = np.array([2, 0, 1])
        cache.put(7, items, scores, slate)
        out = cache.get(7, items, scores)
        np.testing.assert_array_equal(out, slate)
        out[0] = 99  # the caller cannot corrupt the cached copy
        np.testing.assert_array_equal(cache.get(7, items, scores), slate)

    def test_identity_is_the_full_request(self):
        """User, candidates, scores, and tenant each distinguish entries."""
        clock = ManualClock()
        cache = SlateCache(clock=clock)
        items = np.array([3, 1, 2])
        scores = np.array([0.3, 0.1, 0.2])
        cache.put(7, items, scores, np.array([0, 1, 2]))
        assert cache.get(8, items, scores) is None  # other user
        assert cache.get(7, items[::-1], scores) is None  # other candidates
        assert cache.get(7, items, scores + 1.0) is None  # other scores
        assert cache.get(7, items, scores, tenant="b") is None  # other tenant
        assert cache.get(7, items, scores) is not None

    def test_ttl_expiry_on_manual_clock(self):
        clock = ManualClock()
        cache = SlateCache(ttl_s=TTL, clock=clock)
        items, scores = np.array([1, 2]), np.array([0.1, 0.2])
        cache.put(0, items, scores, np.array([1, 0]))
        clock.advance(TTL - 0.001)
        assert cache.get(0, items, scores) is not None
        clock.advance(0.001)  # a put refreshes stored_at, so re-store first
        cache.put(0, items, scores, np.array([1, 0]))
        clock.advance(TTL)
        assert cache.get(0, items, scores) is None
        assert get_registry().counter("serve.cache.expired").value >= 1

    def test_lru_eviction_prefers_stale_buckets(self):
        clock = ManualClock()
        cache = SlateCache(capacity=2, ttl_s=None, clock=clock)
        a = (0, np.array([1, 2]), np.array([0.1, 0.2]))
        b = (1, np.array([3, 4]), np.array([0.3, 0.4]))
        c = (2, np.array([5, 6]), np.array([0.5, 0.6]))
        slate = np.array([0, 1])
        cache.put(*a, slate)
        cache.put(*b, slate)
        assert cache.get(*a) is not None  # refresh a's recency
        cache.put(*c, slate)  # evicts b, the least recently used
        assert cache.get(*b) is None
        assert cache.get(*a) is not None and cache.get(*c) is not None

    def test_invalidate_user_drops_only_that_user(self):
        clock = ManualClock()
        cache = SlateCache(clock=clock)
        items, scores = np.array([1, 2]), np.array([0.1, 0.2])
        other = np.array([3, 4])
        cache.put(0, items, scores, np.array([0, 1]))
        cache.put(0, other, scores, np.array([1, 0]))
        cache.put(1, items, scores, np.array([0, 1]))
        assert cache.invalidate_user(0) == 2
        assert cache.get(0, items, scores) is None
        assert cache.get(0, other, scores) is None
        assert cache.get(1, items, scores) is not None
        assert cache.invalidate_user(0) == 0  # idempotent

    def test_clear_by_tenant(self):
        clock = ManualClock()
        cache = SlateCache(clock=clock)
        items, scores = np.array([1, 2]), np.array([0.1, 0.2])
        cache.put(0, items, scores, np.array([0, 1]), tenant="a")
        cache.put(0, items, scores, np.array([1, 0]), tenant="b")
        cache.clear(tenant="a")
        assert cache.get(0, items, scores, tenant="a") is None
        np.testing.assert_array_equal(
            cache.get(0, items, scores, tenant="b"), [1, 0]
        )
        cache.clear()
        assert len(cache) == 0


class TestCollisions:
    def test_hash_collisions_distinguished_by_full_key(self):
        """With a degenerate hash, every key collides — lookups must still
        be exact via full-key comparison on the bucket chain."""
        clock = ManualClock()
        cache = SlateCache(clock=clock, hash_fn=lambda payload: 0)
        first = (np.array([1, 2, 3]), np.array([0.1, 0.2, 0.3]))
        second = (np.array([4, 5, 6]), np.array([0.4, 0.5, 0.6]))
        cache.put(7, *first, np.array([2, 1, 0]))
        cache.put(7, *second, np.array([0, 2, 1]))
        np.testing.assert_array_equal(cache.get(7, *first), [2, 1, 0])
        np.testing.assert_array_equal(cache.get(7, *second), [0, 2, 1])
        assert cache.get(7, np.array([1, 2, 4]), first[1]) is None
        # Replacement targets the exact chain entry, not the whole bucket.
        cache.put(7, *first, np.array([0, 1, 2]))
        np.testing.assert_array_equal(cache.get(7, *first), [0, 1, 2])
        np.testing.assert_array_equal(cache.get(7, *second), [0, 2, 1])

    def test_collision_chain_expiry_is_per_entry(self):
        clock = ManualClock()
        cache = SlateCache(ttl_s=TTL, clock=clock, hash_fn=lambda payload: 0)
        first = (np.array([1, 2]), np.array([0.1, 0.2]))
        second = (np.array([3, 4]), np.array([0.3, 0.4]))
        cache.put(0, *first, np.array([0, 1]))
        clock.advance(TTL / 2)
        cache.put(0, *second, np.array([1, 0]))
        clock.advance(TTL / 2)
        assert cache.get(0, *first) is None  # expired
        np.testing.assert_array_equal(cache.get(0, *second), [1, 0])


@st.composite
def interleavings(draw):
    """A seeded script of cache operations."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "invalidate", "advance"]),
                st.integers(min_value=0, max_value=2**32 - 1),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return ops


class TestOracleProperty:
    @given(interleavings())
    @settings(max_examples=60, deadline=None)
    def test_random_interleavings_match_bruteforce_oracle(self, ops):
        clock = ManualClock()
        # Capacity lifted: the oracle doesn't model LRU eviction.
        cache = SlateCache(capacity=10_000, ttl_s=TTL, clock=clock)
        oracle: dict = {}  # full key bytes -> (slate, stored_at)

        for op, raw_seed in ops:
            rng = np.random.default_rng(raw_seed)
            user, items, scores = _request(rng)
            key = SlateCache._full_key(user, items, scores, "default")
            if op == "put":
                slate = _slate(rng)
                cache.put(user, items, scores, slate)
                oracle[key] = (slate.copy(), clock.now)
            elif op == "get":
                expected = oracle.get(key)
                if expected is not None and clock.now - expected[1] >= TTL:
                    del oracle[key]
                    expected = None
                got = cache.get(user, items, scores)
                if expected is None:
                    assert got is None
                else:
                    np.testing.assert_array_equal(got, expected[0])
            elif op == "invalidate":
                cache.invalidate_user(user)
                prefix = f"default\x00{user}\x00".encode()
                for stale in [k for k in oracle if k.startswith(prefix)]:
                    del oracle[stale]
            elif op == "advance":
                clock.advance(float(rng.uniform(0.0, TTL / 2)))
