"""Tests for result annotation (significance markers, impv% rows)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiment import EvaluationResult
from repro.eval.reporting import (
    annotate_results,
    improvement_row,
    significance_markers,
    strongest_baseline,
)


def _result(click5: float, samples: np.ndarray) -> EvaluationResult:
    return EvaluationResult(
        metrics={"click@5": click5, "div@5": 2.0},
        per_request_clicks={5: samples},
    )


@pytest.fixture()
def results():
    rng = np.random.default_rng(0)
    base = rng.normal(1.0, 0.3, size=200)
    return {
        "init": _result(1.0, base),
        "prm": _result(1.1, base + 0.1),
        "rapid-pro": _result(1.5, base + 0.5 + rng.normal(0, 0.01, 200)),
    }


class TestSignificanceMarkers:
    def test_clear_winner_is_marked(self, results):
        markers = significance_markers(results, "rapid-pro")
        assert markers[5] is True

    def test_tied_candidate_not_marked(self, results):
        results["tied"] = _result(1.0, results["init"].per_request_clicks[5].copy())
        markers = significance_markers(results, "tied", baselines=["init"])
        assert markers[5] is False

    def test_unknown_candidate_raises(self, results):
        with pytest.raises(KeyError):
            significance_markers(results, "bert")


class TestImprovementRow:
    def test_percentages(self, results):
        row = improvement_row(results, "rapid-pro", "prm")
        assert row["click@5"] == pytest.approx(100 * (1.5 / 1.1 - 1))

    def test_unknown_names_raise(self, results):
        with pytest.raises(KeyError):
            improvement_row(results, "rapid-pro", "bert")


class TestAnnotateResults:
    def test_adds_significance_row(self, results):
        table = annotate_results(results, candidate="rapid-pro")
        assert table["rapid-pro sig"]["click@5"] == 1.0
        assert "init" in table


class TestStrongestBaseline:
    def test_excludes_rapid_and_init(self, results):
        assert strongest_baseline(results, "click@5") == "prm"

    def test_no_baselines_raise(self, results):
        with pytest.raises(ValueError):
            strongest_baseline(
                results, "click@5", exclude=("init", "prm", "rapid-pro")
            )
