"""Tests for basic layers: Linear, Embedding, LayerNorm, Dropout, MLP, containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


class TestLinear:
    def test_shapes_and_affine(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(5, 4))
        out = layer(Tensor(x)).numpy()
        assert out.shape == (5, 3)
        assert np.allclose(out, x @ layer.weight.data.T + layer.bias.data)

    def test_batched_3d_input(self):
        layer = nn.Linear(4, 2, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 7, 4))))
        assert out.shape == (2, 7, 2)

    def test_no_bias(self):
        layer = nn.Linear(3, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_wrong_input_dim_raises(self):
        with pytest.raises(ValueError):
            nn.Linear(4, 3)(Tensor(np.ones((2, 5))))

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            nn.Linear(0, 3)


class TestEmbedding:
    def test_lookup(self):
        emb = nn.Embedding(10, 4, rng=np.random.default_rng(0))
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.numpy()[0, 0], emb.weight.data[1])

    def test_padding_idx_zero_vector_and_grad(self):
        emb = nn.Embedding(10, 4, padding_idx=0, rng=np.random.default_rng(0))
        out = emb(np.array([0, 1]))
        assert np.allclose(out.numpy()[0], 0.0)
        out.sum().backward()
        assert np.allclose(emb.weight.grad[0], 0.0)
        assert not np.allclose(emb.weight.grad[1], 0.0)

    def test_out_of_range_raises(self):
        emb = nn.Embedding(5, 2)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_invalid_padding_idx(self):
        with pytest.raises(ValueError):
            nn.Embedding(5, 2, padding_idx=9)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        ln = nn.LayerNorm(6)
        x = np.random.default_rng(0).normal(2.0, 3.0, size=(4, 6))
        out = ln(Tensor(x)).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-8)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_learnable_shift(self):
        ln = nn.LayerNorm(3)
        ln.beta.data = np.array([1.0, 2.0, 3.0])
        out = ln(Tensor(np.zeros((1, 3)))).numpy()
        assert np.allclose(out, [[1.0, 2.0, 3.0]])

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.LayerNorm(4)(Tensor(np.ones((2, 5))))


class TestDropoutLayer:
    def test_eval_is_identity(self):
        drop = nn.Dropout(0.9)
        drop.eval()
        x = np.ones((5, 5))
        assert np.array_equal(drop(Tensor(x)).numpy(), x)

    def test_train_zeroes_roughly_p(self):
        drop = nn.Dropout(0.5, seed=0)
        out = drop(Tensor(np.ones((100, 100)))).numpy()
        assert abs((out == 0).mean() - 0.5) < 0.05

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestMLP:
    def test_output_shape_and_activation(self):
        mlp = nn.MLP([4, 8, 2], output_activation="sigmoid")
        out = mlp(Tensor(np.random.default_rng(0).normal(size=(3, 4)))).numpy()
        assert out.shape == (3, 2)
        assert (out > 0).all() and (out < 1).all()

    def test_too_few_dims_raises(self):
        with pytest.raises(ValueError):
            nn.MLP([4])

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            nn.MLP([4, 2], activation="gelu")

    def test_parameters_registered(self):
        mlp = nn.MLP([4, 8, 2])
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2


class TestContainers:
    def test_sequential(self):
        seq = nn.Sequential(
            nn.Linear(4, 8, rng=np.random.default_rng(0)),
            nn.Linear(8, 2, rng=np.random.default_rng(1)),
        )
        assert seq(Tensor(np.ones((3, 4)))).shape == (3, 2)
        assert len(seq) == 2
        assert len(list(seq.parameters())) == 4

    def test_module_list(self):
        layers = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(layers) == 3
        assert layers[1] is list(layers)[1]
        assert len(list(layers.parameters())) == 6


class TestInitializers:
    def test_orthogonal_is_orthogonal(self):
        from repro.nn.init import orthogonal

        q = orthogonal((6, 6), np.random.default_rng(0))
        assert np.allclose(q @ q.T, np.eye(6), atol=1e-8)

    def test_orthogonal_rectangular(self):
        from repro.nn.init import orthogonal

        q = orthogonal((3, 6), np.random.default_rng(0))
        assert np.allclose(q @ q.T, np.eye(3), atol=1e-8)

    def test_xavier_bounds(self):
        from repro.nn.init import xavier_uniform

        w = xavier_uniform((50, 30), np.random.default_rng(0))
        bound = np.sqrt(6.0 / 80)
        assert (np.abs(w) <= bound).all()

    def test_fans_validation(self):
        from repro.nn.init import orthogonal

        with pytest.raises(ValueError):
            orthogonal((3,), np.random.default_rng(0))
