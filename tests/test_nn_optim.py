"""Optimizer tests: convergence on convex problems, clipping, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Parameter, Tensor
from repro.nn.optim import SGD, Adam, clip_grad_norm


def quadratic_loss(param: Parameter) -> Tensor:
    target = Tensor(np.array([1.0, -2.0, 3.0]))
    diff = param - target
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        assert np.allclose(param.data, [1.0, -2.0, 3.0], atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            param = Parameter(np.zeros(3))
            optimizer = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                optimizer.zero_grad()
                quadratic_loss(param).backward()
                optimizer.step()
            return quadratic_loss(param).item()

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([10.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()  # zero data gradient
        optimizer.step()
        assert param.data[0] < 10.0

    def test_skips_params_without_grad(self):
        param = Parameter(np.ones(2))
        SGD([param], lr=0.1).step()  # no backward was run
        assert np.allclose(param.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        optimizer = Adam([param], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        assert np.allclose(param.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0.0)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.999))

    def test_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first step ~lr * sign(grad).
        param = Parameter(np.array([0.0]))
        optimizer = Adam([param], lr=0.05)
        optimizer.zero_grad()
        (param * 3.0).sum().backward()
        optimizer.step()
        assert param.data[0] == pytest.approx(-0.05, rel=1e-6)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        total = clip_grad_norm([param], max_norm=1.0)
        assert total == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 0.01)
        clip_grad_norm([param], max_norm=1.0)
        assert np.allclose(param.grad, 0.01)

    def test_ignores_none_grads(self):
        assert clip_grad_norm([Parameter(np.zeros(3))], 1.0) == 0.0
