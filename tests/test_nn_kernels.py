"""Fused recurrent kernel tests: gradchecks, masking, escape hatch, profiler.

The fused kernels must be *numerically interchangeable* with the composed-op
graph: identical forward values (same primitive formulas in the same order)
and gradients matching to tight tolerance (closed-form backward vs chained
primitive backwards differ only in floating-point summation order).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor, kernels
from repro.nn.kernels import (
    fused_enabled,
    gru_cell_fused,
    gru_scan_fused,
    lstm_cell_fused,
    lstm_scan_fused,
    set_fused,
    time_unbind,
    use_fused,
    zero_state,
)


def _random_case(rng, batch, hidden, factor, scale=1.0):
    gates = rng.normal(size=(batch, factor * hidden)) * scale
    h = rng.normal(size=(batch, hidden))
    c = rng.normal(size=(batch, hidden))
    return gates, h, c


def _composed_lstm(gates: Tensor, h: Tensor, c: Tensor, mask_t=None):
    hs = gates.shape[-1] // 4
    i = gates[:, :hs].sigmoid()
    f = gates[:, hs : 2 * hs].sigmoid()
    g = gates[:, 2 * hs : 3 * hs].tanh()
    o = gates[:, 3 * hs :].sigmoid()
    c_next = f * c + i * g
    h_next = o * c_next.tanh()
    if mask_t is not None:
        keep = Tensor(mask_t.astype(np.float64)[:, None])
        h_next = h_next * keep + h * (Tensor(1.0) - keep)
        c_next = c_next * keep + c * (Tensor(1.0) - keep)
    return h_next, c_next


def _composed_gru(gi: Tensor, gh: Tensor, h: Tensor, mask_t=None):
    hs = gi.shape[-1] // 3
    r = (gi[:, :hs] + gh[:, :hs]).sigmoid()
    z = (gi[:, hs : 2 * hs] + gh[:, hs : 2 * hs]).sigmoid()
    n = (gi[:, 2 * hs :] + r * gh[:, 2 * hs :]).tanh()
    h_next = (1.0 - z) * n + z * h
    if mask_t is not None:
        keep = Tensor(mask_t.astype(np.float64)[:, None])
        h_next = h_next * keep + h * (Tensor(1.0) - keep)
    return h_next


def _loss(h: Tensor, c: Tensor | None = None) -> Tensor:
    # Mixes both outputs nonlinearly so every gradient path is exercised.
    total = (h * h).sum() + h.sum()
    if c is not None:
        total = total + (c * c * 0.5).sum() + c.tanh().sum()
    return total


class TestLSTMCellFusedGradcheck:
    @pytest.mark.parametrize(
        "batch,hidden,scale",
        [(1, 1, 1.0), (3, 4, 1.0), (5, 7, 1.0), (2, 3, 50.0), (2, 3, 1e-6)],
    )
    def test_matches_composed_graph(self, batch, hidden, scale):
        rng = np.random.default_rng(batch * 100 + hidden)
        gates_d, h_d, c_d = _random_case(rng, batch, hidden, 4, scale)

        gates_f = Tensor(gates_d, requires_grad=True)
        h_f = Tensor(h_d, requires_grad=True)
        c_f = Tensor(c_d, requires_grad=True)
        hf, cf = lstm_cell_fused(gates_f, h_f, c_f)
        _loss(hf, cf).backward()

        gates_c = Tensor(gates_d, requires_grad=True)
        h_c = Tensor(h_d, requires_grad=True)
        c_c = Tensor(c_d, requires_grad=True)
        hc, cc = _composed_lstm(gates_c, h_c, c_c)
        _loss(hc, cc).backward()

        assert np.array_equal(hf.numpy(), hc.numpy())
        assert np.array_equal(cf.numpy(), cc.numpy())
        assert np.allclose(gates_f.grad, gates_c.grad, atol=1e-8)
        assert np.allclose(c_f.grad, c_c.grad, atol=1e-8)
        # Without a mask, h_prev only feeds the step through the (external)
        # recurrent matmul, so no gradient reaches it from the cell itself.
        assert h_f.grad is None and h_c.grad is None

    @pytest.mark.parametrize("masked_rows", [0, 1, 2])
    def test_masked_steps_match_composed(self, masked_rows):
        rng = np.random.default_rng(7 + masked_rows)
        gates_d, h_d, c_d = _random_case(rng, 4, 3, 4)
        mask = np.ones(4, dtype=bool)
        mask[:masked_rows] = False

        gates_f = Tensor(gates_d, requires_grad=True)
        h_f = Tensor(h_d, requires_grad=True)
        c_f = Tensor(c_d, requires_grad=True)
        hf, cf = lstm_cell_fused(gates_f, h_f, c_f, mask)
        _loss(hf, cf).backward()

        gates_c = Tensor(gates_d, requires_grad=True)
        h_c = Tensor(h_d, requires_grad=True)
        c_c = Tensor(c_d, requires_grad=True)
        hc, cc = _composed_lstm(gates_c, h_c, c_c, mask)
        _loss(hc, cc).backward()

        assert np.array_equal(hf.numpy(), hc.numpy())
        assert np.array_equal(cf.numpy(), cc.numpy())
        assert np.allclose(gates_f.grad, gates_c.grad, atol=1e-8)
        assert np.allclose(h_f.grad, h_c.grad, atol=1e-8)
        assert np.allclose(c_f.grad, c_c.grad, atol=1e-8)
        # Padded rows pass their gradient through to the previous state.
        if masked_rows:
            assert np.array_equal(
                np.asarray(gates_f.grad)[:masked_rows], 0.0 * gates_d[:masked_rows]
            )

    def test_finite_difference_gradient(self):
        rng = np.random.default_rng(11)
        gates_d, h_d, c_d = _random_case(rng, 2, 3, 4)
        eps = 1e-6

        def loss_at(gates_values, c_values):
            with nn.no_grad():
                h, c = lstm_cell_fused(
                    Tensor(gates_values), Tensor(h_d), Tensor(c_values)
                )
                return _loss(h, c).item()

        gates = Tensor(gates_d, requires_grad=True)
        c_prev = Tensor(c_d, requires_grad=True)
        h, c = lstm_cell_fused(gates, Tensor(h_d), c_prev)
        _loss(h, c).backward()

        for target, grad in ((gates_d, gates.grad), (c_d, c_prev.grad)):
            numeric = np.zeros_like(target)
            flat, numeric_flat = target.ravel(), numeric.ravel()
            for index in range(flat.size):
                original = flat[index]
                flat[index] = original + eps
                plus = loss_at(gates_d, c_d)
                flat[index] = original - eps
                minus = loss_at(gates_d, c_d)
                flat[index] = original
                numeric_flat[index] = (plus - minus) / (2 * eps)
            assert np.allclose(grad, numeric, atol=1e-6)


class TestGRUCellFusedGradcheck:
    @pytest.mark.parametrize(
        "batch,hidden,scale",
        [(1, 1, 1.0), (3, 4, 1.0), (5, 7, 1.0), (2, 3, 50.0), (2, 3, 1e-6)],
    )
    def test_matches_composed_graph(self, batch, hidden, scale):
        rng = np.random.default_rng(batch * 10 + hidden)
        gi_d = rng.normal(size=(batch, 3 * hidden)) * scale
        gh_d = rng.normal(size=(batch, 3 * hidden)) * scale
        h_d = rng.normal(size=(batch, hidden))

        gi_f = Tensor(gi_d, requires_grad=True)
        gh_f = Tensor(gh_d, requires_grad=True)
        h_f = Tensor(h_d, requires_grad=True)
        hf = gru_cell_fused(gi_f, gh_f, h_f)
        _loss(hf).backward()

        gi_c = Tensor(gi_d, requires_grad=True)
        gh_c = Tensor(gh_d, requires_grad=True)
        h_c = Tensor(h_d, requires_grad=True)
        hc = _composed_gru(gi_c, gh_c, h_c)
        _loss(hc).backward()

        assert np.array_equal(hf.numpy(), hc.numpy())
        assert np.allclose(gi_f.grad, gi_c.grad, atol=1e-8)
        assert np.allclose(gh_f.grad, gh_c.grad, atol=1e-8)
        assert np.allclose(h_f.grad, h_c.grad, atol=1e-8)

    def test_masked_steps_match_composed(self):
        rng = np.random.default_rng(23)
        gi_d = rng.normal(size=(4, 9))
        gh_d = rng.normal(size=(4, 9))
        h_d = rng.normal(size=(4, 3))
        mask = np.array([False, True, False, True])

        gi_f = Tensor(gi_d, requires_grad=True)
        gh_f = Tensor(gh_d, requires_grad=True)
        h_f = Tensor(h_d, requires_grad=True)
        _loss(gru_cell_fused(gi_f, gh_f, h_f, mask)).backward()

        gi_c = Tensor(gi_d, requires_grad=True)
        gh_c = Tensor(gh_d, requires_grad=True)
        h_c = Tensor(h_d, requires_grad=True)
        _loss(_composed_gru(gi_c, gh_c, h_c, mask)).backward()

        assert np.allclose(gi_f.grad, gi_c.grad, atol=1e-8)
        assert np.allclose(gh_f.grad, gh_c.grad, atol=1e-8)
        assert np.allclose(h_f.grad, h_c.grad, atol=1e-8)

    def test_finite_difference_gradient(self):
        rng = np.random.default_rng(29)
        gi_d = rng.normal(size=(2, 9))
        gh_d = rng.normal(size=(2, 9))
        h_d = rng.normal(size=(2, 3))
        eps = 1e-6

        gi = Tensor(gi_d, requires_grad=True)
        gh = Tensor(gh_d, requires_grad=True)
        h = Tensor(h_d, requires_grad=True)
        _loss(gru_cell_fused(gi, gh, h)).backward()

        for target, grad in ((gi_d, gi.grad), (gh_d, gh.grad), (h_d, h.grad)):
            numeric = np.zeros_like(target)
            flat, numeric_flat = target.ravel(), numeric.ravel()
            for index in range(flat.size):
                original = flat[index]
                flat[index] = original + eps
                with nn.no_grad():
                    plus = _loss(
                        gru_cell_fused(Tensor(gi_d), Tensor(gh_d), Tensor(h_d))
                    ).item()
                flat[index] = original - eps
                with nn.no_grad():
                    minus = _loss(
                        gru_cell_fused(Tensor(gi_d), Tensor(gh_d), Tensor(h_d))
                    ).item()
                flat[index] = original
                numeric_flat[index] = (plus - minus) / (2 * eps)
            assert np.allclose(grad, numeric, atol=1e-6)


class TestScanGradcheck:
    """Finite-difference checks for the whole-sequence scan kernels.

    The layer-level fused-vs-composed agreement lives in
    :class:`TestSequenceEquivalence`; these pin the scan backwards against
    numeric gradients directly, without the composed graph as an oracle.
    """

    @pytest.mark.parametrize("masked", [False, True])
    def test_lstm_scan_finite_difference(self, masked):
        rng = np.random.default_rng(31)
        gi_d = rng.normal(size=(2, 3, 8))
        w_d = rng.normal(size=(8, 2)) * 0.5
        mask = None
        if masked:
            mask = np.array([[True, False, True], [True, True, False]])
        eps = 1e-6

        def loss_at():
            with nn.no_grad():
                out = lstm_scan_fused(Tensor(gi_d), Tensor(w_d), mask)
                return _loss(out).item()

        gi = Tensor(gi_d, requires_grad=True)
        w = Tensor(w_d, requires_grad=True)
        _loss(lstm_scan_fused(gi, w, mask)).backward()

        for target, grad in ((gi_d, gi.grad), (w_d, w.grad)):
            numeric = np.zeros_like(target)
            flat, numeric_flat = target.ravel(), numeric.ravel()
            for index in range(flat.size):
                original = flat[index]
                flat[index] = original + eps
                plus = loss_at()
                flat[index] = original - eps
                minus = loss_at()
                flat[index] = original
                numeric_flat[index] = (plus - minus) / (2 * eps)
            assert np.allclose(grad, numeric, atol=1e-6)

    @pytest.mark.parametrize("masked", [False, True])
    def test_gru_scan_finite_difference(self, masked):
        rng = np.random.default_rng(37)
        gi_d = rng.normal(size=(2, 3, 6))
        w_d = rng.normal(size=(6, 2)) * 0.5
        mask = None
        if masked:
            mask = np.array([[True, True, False], [True, False, True]])
        eps = 1e-6

        def loss_at():
            with nn.no_grad():
                out = gru_scan_fused(Tensor(gi_d), Tensor(w_d), mask)
                return _loss(out).item()

        gi = Tensor(gi_d, requires_grad=True)
        w = Tensor(w_d, requires_grad=True)
        _loss(gru_scan_fused(gi, w, mask)).backward()

        for target, grad in ((gi_d, gi.grad), (w_d, w.grad)):
            numeric = np.zeros_like(target)
            flat, numeric_flat = target.ravel(), numeric.ravel()
            for index in range(flat.size):
                original = flat[index]
                flat[index] = original + eps
                plus = loss_at()
                flat[index] = original - eps
                minus = loss_at()
                flat[index] = original
                numeric_flat[index] = (plus - minus) / (2 * eps)
            assert np.allclose(grad, numeric, atol=1e-6)


class TestTimeUnbind:
    def test_values_match_getitem_slices(self):
        x_d = np.random.default_rng(41).normal(size=(3, 4, 5))
        steps = time_unbind(Tensor(x_d, requires_grad=True))
        assert len(steps) == 4
        for t, step in enumerate(steps):
            assert np.array_equal(step.numpy(), x_d[:, t])

    def test_gradients_match_getitem_graph(self):
        x_d = np.random.default_rng(43).normal(size=(2, 3, 4))

        def run(split):
            x = Tensor(x_d, requires_grad=True)
            steps = split(x)
            # Skip t=1 entirely: a partially-consumed unbind must still
            # deliver the shared buffer to the parent.
            (steps[0].sum() + (steps[2] * 2.0).sum()).backward()
            return np.asarray(x.grad)

        unbound = run(time_unbind)
        composed = run(lambda x: tuple(x[:, t, :] for t in range(3)))
        assert np.array_equal(unbound, composed)
        expected = np.zeros_like(x_d)
        expected[:, 0] = 1.0
        expected[:, 2] = 2.0
        assert np.array_equal(unbound, expected)

    def test_no_grad_passthrough(self):
        x = Tensor(np.ones((2, 3, 4)))
        steps = time_unbind(x)
        assert all(not step.requires_grad for step in steps)
        assert np.array_equal(steps[1].numpy(), np.ones((2, 4)))


class TestSequenceEquivalence:
    """Whole-layer fused vs composed agreement, including parameters."""

    @pytest.mark.parametrize("layer_cls", [nn.LSTM, nn.GRU])
    def test_layer_outputs_and_grads_agree(self, layer_cls):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 6, 5))
        mask = rng.random((4, 6)) < 0.7
        mask[:, 0] = True
        layer = layer_cls(5, 3, rng=np.random.default_rng(5))

        results = {}
        for flag in (True, False):
            with use_fused(flag):
                layer.zero_grad()
                outputs, final = layer(Tensor(x), mask=mask)
                (_loss(outputs) + _loss(final)).backward()
                results[flag] = (
                    outputs.numpy().copy(),
                    final.numpy().copy(),
                    {k: v.grad.copy() for k, v in layer.named_parameters()},
                )

        out_f, fin_f, grads_f = results[True]
        out_c, fin_c, grads_c = results[False]
        assert np.array_equal(out_f, out_c)
        assert np.array_equal(fin_f, fin_c)
        for name in grads_f:
            assert np.allclose(grads_f[name], grads_c[name], atol=1e-8), name

    def test_bilstm_agrees(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(3, 5, 4))
        bi = nn.BiLSTM(4, 2, rng=np.random.default_rng(17))
        with use_fused(True):
            fused = bi(Tensor(x)).numpy().copy()
        with use_fused(False):
            composed = bi(Tensor(x)).numpy().copy()
        assert np.array_equal(fused, composed)

    def test_single_cell_calls_agree(self):
        rng = np.random.default_rng(19)
        x = rng.normal(size=(3, 4))
        lstm_cell = nn.LSTMCell(4, 3, rng=np.random.default_rng(19))
        gru_cell = nn.GRUCell(4, 3, rng=np.random.default_rng(19))
        with use_fused(True):
            hf, cf = lstm_cell(Tensor(x))
            gf = gru_cell(Tensor(x))
        with use_fused(False):
            hc, cc = lstm_cell(Tensor(x))
            gc = gru_cell(Tensor(x))
        assert np.array_equal(hf.numpy(), hc.numpy())
        assert np.array_equal(cf.numpy(), cc.numpy())
        assert np.array_equal(gf.numpy(), gc.numpy())


class TestEscapeHatch:
    def test_env_var_controls_default(self, monkeypatch):
        set_fused(None)
        monkeypatch.setenv("REPRO_NN_FUSED", "0")
        assert not fused_enabled()
        monkeypatch.setenv("REPRO_NN_FUSED", "false")
        assert not fused_enabled()
        monkeypatch.setenv("REPRO_NN_FUSED", "1")
        assert fused_enabled()
        monkeypatch.delenv("REPRO_NN_FUSED")
        assert fused_enabled()

    def test_module_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_FUSED", "0")
        try:
            set_fused(True)
            assert fused_enabled()
        finally:
            set_fused(None)

    def test_training_losses_identical_across_paths(self, taobao_world):
        """A short real training run must be path-independent (satellite)."""
        from repro.core.rapid import RapidConfig, make_rapid_variant
        from repro.core.trainer import TrainConfig, train_rapid
        from repro.data import RankingRequest

        world = taobao_world
        histories = world.sample_histories()
        rng = np.random.default_rng(0)
        requests = []
        for _ in range(24):
            user = int(rng.integers(world.config.num_users))
            items = rng.choice(world.config.num_items, size=6, replace=False)
            clicks = (rng.random(6) < 0.4).astype(float)
            requests.append(
                RankingRequest(user, items, rng.normal(size=6), clicks=clicks)
            )
        config = RapidConfig(
            user_dim=world.population.feature_dim,
            item_dim=world.catalog.feature_dim,
            num_topics=world.catalog.num_topics,
            hidden=6,
            seed=0,
        )
        losses = {}
        for flag in (True, False):
            with use_fused(flag):
                model = make_rapid_variant("rapid-pro", config)
                losses[flag] = np.asarray(
                    train_rapid(
                        model,
                        requests,
                        world.catalog,
                        world.population,
                        histories,
                        config=TrainConfig(epochs=2, batch_size=8, seed=0),
                    )
                )
        assert np.allclose(losses[True], losses[False], atol=1e-8)


class TestZeroStateCache:
    def test_same_object_per_shape(self):
        a = zero_state(4, 3)
        b = zero_state(4, 3)
        c = zero_state(2, 3)
        assert a is b
        assert c is not a
        assert not a.numpy().flags.writeable
        assert np.array_equal(a.numpy(), np.zeros((4, 3)))

    def test_cells_do_not_leak_state_between_calls(self):
        cell = nn.LSTMCell(3, 2, rng=np.random.default_rng(0))
        x = Tensor(np.ones((2, 3)))
        h1, c1 = cell(x)
        h2, c2 = cell(x)
        assert np.array_equal(h1.numpy(), h2.numpy())
        assert np.array_equal(c1.numpy(), c2.numpy())


class TestProfilerIntegration:
    def test_fused_ops_registered(self):
        from repro.nn.tensor import PROFILED_OPS

        for op in (
            "lstm_cell_fused",
            "gru_cell_fused",
            "lstm_scan_fused",
            "gru_scan_fused",
            "time_unbind",
        ):
            assert op in PROFILED_OPS
        assert Tensor.lstm_cell_fused is lstm_cell_fused
        assert Tensor.gru_cell_fused is gru_cell_fused

    def test_profiler_attributes_fused_time(self):
        from repro.obs.autograd import op_stats, profile_ops

        lstm = nn.LSTM(4, 3, rng=np.random.default_rng(0))
        gru = nn.GRU(4, 3, rng=np.random.default_rng(0))
        lstm_cell = nn.LSTMCell(4, 3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5, 4)))
        x_t = Tensor(np.random.default_rng(2).normal(size=(2, 4)))
        with use_fused(True), profile_ops():
            outputs, final = lstm(x)
            _loss(outputs).backward()
            outputs, final = gru(x)
            _loss(outputs).backward()
            h, c = lstm_cell(x_t)
            (_loss(h) + _loss(c)).backward()
            stats = {row["op"]: row for row in op_stats()}
        # Sequence layers run as one fused scan node per call...
        for op in ("lstm_scan_fused", "gru_scan_fused"):
            assert op in stats
            assert stats[op]["forward_calls"] == 1
            assert stats[op]["backward_calls"] == 1
        # ...while a bare cell call profiles under the cell kernel.
        assert stats["lstm_cell_fused"]["forward_calls"] == 1
        assert stats["lstm_cell_fused"]["backward_calls"] > 0

    def test_report_renders_fused_share_line(self):
        from repro.obs.report import render_report

        records = [
            {
                "run_id": "r",
                "ts": 0.0,
                "event": "autograd.op",
                "op": "lstm_cell_fused",
                "forward_calls": 10,
                "forward_ms": 5.0,
                "backward_calls": 10,
                "backward_ms": 5.0,
                "total_ms": 10.0,
            },
            {
                "run_id": "r",
                "ts": 1.0,
                "event": "autograd.op",
                "op": "matmul",
                "forward_calls": 10,
                "forward_ms": 15.0,
                "backward_calls": 10,
                "backward_ms": 15.0,
                "total_ms": 30.0,
            },
        ]
        text = render_report(records)
        assert "lstm_cell_fused" in text
        assert "fused kernels" in text
        assert "25.0% of profiled op time" in text
