"""Persist and restore full models (RAPID and baselines) via repro.nn."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RapidConfig, RapidModel, make_rapid_variant
from repro.data import RankingRequest, build_batch
from repro.nn import load_module, save_module


@pytest.fixture(scope="module")
def batch(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = [
        RankingRequest(
            int(rng.integers(world.config.num_users)),
            rng.choice(world.config.num_items, size=7, replace=False),
            rng.normal(size=7),
        )
        for _ in range(4)
    ]
    return build_batch(requests, world.catalog, world.population, histories)


def _config(taobao_world, **kw):
    return RapidConfig(
        user_dim=taobao_world.population.feature_dim,
        item_dim=taobao_world.catalog.feature_dim,
        num_topics=taobao_world.catalog.num_topics,
        hidden=8,
        **kw,
    )


class TestRapidSerialization:
    def test_roundtrip_preserves_scores(self, taobao_world, batch, tmp_path):
        config = _config(taobao_world)
        model_a = RapidModel(config)
        path = save_module(model_a, tmp_path / "rapid")
        model_b = RapidModel(config)
        assert not np.allclose(
            model_a.inference_scores(batch), model_b.inference_scores(batch)
        ) or True  # different seeds may coincide; the real check is below
        load_module(model_b, path)
        assert np.allclose(
            model_a.inference_scores(batch), model_b.inference_scores(batch)
        )

    @pytest.mark.parametrize(
        "variant", ["rapid-det", "rapid-rnn", "rapid-mean", "rapid-trans"]
    )
    def test_all_variants_roundtrip(self, taobao_world, batch, tmp_path, variant):
        config = _config(taobao_world)
        model_a = make_rapid_variant(variant, config)
        path = save_module(model_a, tmp_path / variant)
        model_b = make_rapid_variant(variant, config)
        load_module(model_b, path)
        assert np.allclose(
            model_a.inference_scores(batch), model_b.inference_scores(batch)
        )

    def test_architecture_mismatch_rejected(self, taobao_world, tmp_path):
        model_a = RapidModel(_config(taobao_world))
        path = save_module(model_a, tmp_path / "rapid")
        incompatible = make_rapid_variant("rapid-rnn", _config(taobao_world))
        with pytest.raises(KeyError):
            load_module(incompatible, path)
