"""Tests for sliding-window histograms, windowed counters, and EWMA meters."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.obs import get_registry, reset_registry
from repro.obs.windows import (
    EwmaMeter,
    WindowedCounter,
    WindowedHistogram,
    disable_windowed,
    enable_windowed,
    mark,
    observe,
    windowed_enabled,
    windowed_metrics,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestWindowedHistogram:
    def test_quantiles_match_brute_force_oracle(self):
        clock = FakeClock()
        hist = WindowedHistogram("t", window_s=60.0, buckets=6, clock=clock)
        rng = np.random.default_rng(0)
        recorded: list[tuple[float, float]] = []  # (ts, value)
        for _ in range(600):
            value = float(rng.exponential(10.0))
            hist.observe(value)
            recorded.append((clock.now, value))
            clock.advance(float(rng.uniform(0.0, 0.3)))
        # Brute-force oracle with the documented sub-window granularity:
        # a sample is live while its sub-window (span = window/buckets) is
        # within ``buckets`` ticks of the current one, so the effective
        # window is window_s..window_s+span_s depending on alignment.
        span = 60.0 / 6
        now_tick = math.floor(clock.now / span)
        live = [
            v
            for ts, v in recorded
            if now_tick - math.floor(ts / span) <= 6
        ]
        assert hist.count == len(live)
        assert hist.sum == pytest.approx(sum(live))
        for q in (0.5, 0.95, 0.99):
            oracle = float(np.quantile(np.sort(live), q, method="linear"))
            assert hist.quantile(q) == pytest.approx(oracle)

    def test_old_samples_expire(self):
        clock = FakeClock()
        hist = WindowedHistogram("t", window_s=10.0, buckets=5, clock=clock)
        for _ in range(50):
            hist.observe(100.0)
        clock.advance(12.5)  # window + one sub-window span: all expired
        assert hist.count == 0
        assert hist.p95 == 0.0
        hist.observe(1.0)
        assert hist.count == 1
        assert hist.p50 == pytest.approx(1.0)

    def test_partial_expiry_drops_only_old_buckets(self):
        clock = FakeClock()
        hist = WindowedHistogram("t", window_s=10.0, buckets=5, clock=clock)
        hist.observe(100.0)  # lands in the first sub-window
        clock.advance(6.0)
        hist.observe(1.0)  # much later sub-window
        clock.advance(6.5)  # first sub-window expired, second still live
        assert hist.count == 1
        assert hist.p50 == pytest.approx(1.0)

    def test_decimation_caps_memory_keeps_count(self):
        clock = FakeClock()
        hist = WindowedHistogram(
            "t", window_s=60.0, buckets=6, max_samples_per_bucket=64, clock=clock
        )
        values = [float(v) for v in range(1000)]
        np.random.default_rng(0).shuffle(values)
        # (Every-other decimation is quantile-neutral for randomly ordered
        # arrivals; monotone arrivals would skew recent — same caveat as
        # the cumulative histogram's reservoir.)
        for v in values:
            hist.observe(v)
        assert hist.count == 1000  # exact count survives decimation
        assert hist.p50 == pytest.approx(500.0, rel=0.3)

    def test_snapshot_shape(self):
        hist = WindowedHistogram("t", window_s=60.0)
        hist.observe(2.0)
        snap = hist.snapshot()
        assert snap["kind"] == "windowed_histogram"
        assert snap["window_s"] == 60.0
        for key in ("count", "sum", "mean", "p50", "p95", "p99"):
            assert key in snap


class TestWindowedCounter:
    def test_total_over_window_vs_lifetime(self):
        clock = FakeClock()
        counter = WindowedCounter("c", window_s=10.0, buckets=5, clock=clock)
        counter.add(5.0)
        clock.advance(12.5)  # window + one sub-window span: expired
        counter.add(2.0)
        assert counter.total == pytest.approx(2.0)  # windowed
        assert counter.lifetime_total == pytest.approx(7.0)


class TestEwmaMeter:
    def test_converges_to_constant_rate(self):
        clock = FakeClock()
        meter = EwmaMeter("m", taus=(60.0,), tick_s=5.0, clock=clock)
        # 100 events/s for 10 minutes: the 60s EWMA must converge.
        for _ in range(120):
            meter.mark(500.0)  # 500 events per 5s tick
            clock.advance(5.0)
        assert meter.rate(60.0) == pytest.approx(100.0, rel=0.05)

    def test_decays_when_idle(self):
        clock = FakeClock()
        meter = EwmaMeter("m", taus=(60.0,), tick_s=5.0, clock=clock)
        for _ in range(120):
            meter.mark(500.0)
            clock.advance(5.0)
        busy = meter.rate(60.0)
        clock.advance(120.0)  # two time constants of silence
        idle = meter.rate(60.0)
        assert idle < busy * math.exp(-1.5)  # decayed at least ~e^-2-ish

    def test_mean_rate(self):
        clock = FakeClock()
        meter = EwmaMeter("m", clock=clock)
        meter.mark(50.0)
        clock.advance(10.0)
        assert meter.mean_rate() == pytest.approx(5.0)

    def test_snapshot_keys(self):
        meter = EwmaMeter("m")
        meter.mark()
        snap = meter.snapshot()
        assert snap["kind"] == "meter"
        assert "rate_60s_per_s" in snap
        assert "mean_rate_per_s" in snap


class TestOptInHelpers:
    def teardown_method(self):
        disable_windowed()
        reset_registry()

    def test_disabled_by_default_no_series_created(self):
        reset_registry()
        assert not windowed_enabled()
        observe("off.latency_ms", 5.0)
        mark("off.rate")
        assert not any(
            s["name"].startswith("off.") for s in get_registry().collect()
        )

    def test_enabled_records_into_registry(self):
        reset_registry()
        enable_windowed()
        observe("on.latency_ms", 5.0, model="x")
        mark("on.rate")
        names = {s["name"]: s for s in get_registry().collect()}
        assert names["on.latency_ms"]["kind"] == "windowed_histogram"
        assert names["on.latency_ms"]["count"] == 1
        assert names["on.rate"]["kind"] == "meter"

    def test_context_manager_restores(self):
        with windowed_metrics():
            assert windowed_enabled()
        assert not windowed_enabled()

    def test_windowed_and_cumulative_share_a_name(self):
        reset_registry()
        registry = get_registry()
        registry.histogram("shared.latency_ms").observe(1.0)
        registry.windowed_histogram("shared.latency_ms").observe(2.0)
        kinds = sorted(
            s["kind"] for s in registry.collect() if s["name"] == "shared.latency_ms"
        )
        assert kinds == ["histogram", "windowed_histogram"]
