"""Dependent Click Model tests: simulation, closed forms, MLE recovery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click import (
    DependentClickModel,
    coverage_gain,
    expected_clicks_curve,
    fit_dcm,
    satisfaction_probability,
)


class TestCoverageGain:
    def test_first_item_gets_full_coverage(self):
        coverage = np.array([[0.8, 0.0], [0.8, 0.5]])
        zeta = coverage_gain(coverage)
        assert np.allclose(zeta[0], [0.8, 0.0])
        # second item's topic-0 gain is discounted by the first item
        assert zeta[1, 0] == pytest.approx(0.8 * 0.2)
        assert zeta[1, 1] == pytest.approx(0.5)

    def test_gains_sum_to_total_coverage(self):
        rng = np.random.default_rng(0)
        coverage = rng.random((6, 4))
        zeta = coverage_gain(coverage)
        total = 1.0 - np.prod(1.0 - coverage, axis=0)
        assert np.allclose(zeta.sum(axis=0), total)

    def test_onehot_only_first_of_topic_gains(self):
        coverage = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        zeta = coverage_gain(coverage)
        assert np.allclose(zeta, [[1, 0], [0, 0], [0, 1]])


class TestClosedForms:
    def test_expected_clicks_monotone_nondecreasing(self):
        rng = np.random.default_rng(0)
        phi, eps = rng.random(8), rng.random(8)
        curve = expected_clicks_curve(phi, eps)
        assert (np.diff(curve) >= -1e-12).all()

    def test_expected_clicks_no_termination(self):
        phi = np.array([0.5, 0.5, 0.5])
        curve = expected_clicks_curve(phi, np.zeros(3))
        assert np.allclose(curve, [0.5, 1.0, 1.5])

    def test_expected_clicks_certain_termination(self):
        phi = np.array([1.0, 1.0])
        curve = expected_clicks_curve(phi, np.ones(2))
        assert np.allclose(curve, [1.0, 1.0])  # session ends at position 1

    def test_satisfaction_formula(self):
        phi = np.array([0.5, 0.5])
        eps = np.array([0.4, 0.4])
        satis = satisfaction_probability(phi, eps)
        assert satis[0] == pytest.approx(0.2)
        assert satis[1] == pytest.approx(1 - 0.8 * 0.8)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_satisfaction_in_unit_interval_and_monotone(self, seed):
        rng = np.random.default_rng(seed)
        phi, eps = rng.random(6), rng.random(6)
        satis = satisfaction_probability(phi, eps)
        assert ((satis >= 0) & (satis <= 1)).all()
        assert (np.diff(satis) >= -1e-12).all()


class TestDependentClickModel:
    @pytest.fixture(scope="class")
    def dcm(self, taobao_world):
        return DependentClickModel(taobao_world, tradeoff=0.5)

    def test_attraction_in_unit_interval(self, dcm, taobao_world):
        items = np.arange(10)
        phi = dcm.attraction_probabilities(0, items)
        assert ((phi >= 0) & (phi <= 1)).all()

    def test_tradeoff_one_is_pure_relevance(self, taobao_world):
        dcm = DependentClickModel(taobao_world, tradeoff=1.0)
        items = np.arange(8)
        phi = dcm.attraction_probabilities(2, items)
        assert np.allclose(phi, taobao_world.relevance_matrix()[2, items])

    def test_diversity_raises_attraction_of_novel_items(self, appstore_world):
        """Under lambda < 1, an item's attraction is higher when it is the
        first of its topic than when a same-topic item precedes it.  Uses
        the one-hot App Store world where topic membership is exact."""
        dcm = DependentClickModel(appstore_world, tradeoff=0.5)
        coverage = appstore_world.catalog.coverage
        dominant = coverage.argmax(axis=1)
        # pick a user whose rho is positive on the target topic
        topic = dominant[0]
        user = int(np.argmax(appstore_world.population.diversity_weight[:, topic]))
        same = np.flatnonzero(dominant == topic)[:2]
        other = np.flatnonzero(dominant != topic)[0]
        target = same[1]
        phi_first = dcm.attraction_probabilities(user, np.array([other, target]))
        phi_second = dcm.attraction_probabilities(user, np.array([same[0], target]))
        assert phi_first[1] > phi_second[1]

    def test_termination_non_increasing(self, dcm):
        eps = dcm.termination_probabilities(10)
        assert (np.diff(eps) <= 0).all()
        assert ((eps >= 0) & (eps <= 1)).all()

    def test_simulate_full_information_unmasks_tail(self, dcm):
        rng = np.random.default_rng(0)
        items = np.arange(10)
        # Realistic sessions stop after a satisfied click; full-information
        # sessions can have clicks anywhere.  Check via many simulations.
        realistic = np.vstack(
            [dcm.simulate(0, items, rng) for _ in range(300)]
        )
        full = np.vstack(
            [dcm.simulate(0, items, rng, full_information=True) for _ in range(300)]
        )
        assert full[:, -1].mean() > realistic[:, -1].mean()

    def test_simulate_respects_termination_semantics(self, dcm):
        rng = np.random.default_rng(1)
        items = np.arange(10)
        for _ in range(50):
            clicks = dcm.simulate(0, items, rng)
            assert set(np.unique(clicks)) <= {0.0, 1.0}

    def test_expected_clicks_and_satisfaction_scalars(self, dcm):
        items = np.arange(10)
        assert 0 <= dcm.expected_clicks(0, items, 5) <= 5
        assert 0 <= dcm.satisfaction(0, items, 5) <= 1

    def test_invalid_tradeoff_raises(self, taobao_world):
        with pytest.raises(ValueError):
            DependentClickModel(taobao_world, tradeoff=1.5)


class TestFitDCM:
    def test_recovers_attraction_ordering(self):
        """MLE attraction estimates should rank items like the truth."""
        rng = np.random.default_rng(0)
        num_items = 20
        true_phi = np.linspace(0.1, 0.8, num_items)
        eps = np.full(10, 0.3)
        lists, clicks = [], []
        for _ in range(3000):
            items = rng.choice(num_items, size=10, replace=False)
            y = np.zeros(10)
            for k, item in enumerate(items):
                if rng.random() < true_phi[item]:
                    y[k] = 1.0
                    if rng.random() < eps[k]:
                        break
            lists.append(items)
            clicks.append(y)
        fitted = fit_dcm(lists, clicks, num_items)
        corr = np.corrcoef(fitted.attraction, true_phi)[0, 1]
        assert corr > 0.9

    def test_termination_estimates_in_range(self):
        rng = np.random.default_rng(1)
        lists = [rng.choice(10, size=5, replace=False) for _ in range(200)]
        clicks = [(rng.random(5) < 0.4).astype(float) for _ in range(200)]
        fitted = fit_dcm(lists, clicks, 10)
        assert ((fitted.termination >= 0) & (fitted.termination <= 1)).all()

    def test_misaligned_inputs_raise(self):
        with pytest.raises(ValueError):
            fit_dcm([np.array([1])], [], 5)

    def test_smoothing_handles_unseen_items(self):
        fitted = fit_dcm(
            [np.array([0, 1])], [np.array([1.0, 0.0])], num_items=5
        )
        assert np.isfinite(fitted.attraction).all()
        # unseen items get the prior 0.5
        assert fitted.attraction[4] == pytest.approx(0.5)
