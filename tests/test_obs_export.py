"""Exporter tests: OpenMetrics exposition (golden) and JSON snapshots."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.export import (
    SnapshotExporter,
    render_openmetrics,
    write_openmetrics,
    write_snapshot,
)
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _populated_registry() -> MetricsRegistry:
    """A registry with every metric kind, on injected clocks: byte-stable."""
    fake = FakeClock(1000.0)
    registry = MetricsRegistry()
    registry.counter("train.batches").inc(3)
    registry.counter("rerank.requests", reranker="mmr").inc(7)
    registry.gauge("obs.slo.state", slo="rerank-latency").set(2)
    hist = registry.histogram("rerank.latency_ms", reranker="mmr")
    for value in (1.0, 2.0, 3.0, 4.0):
        hist.observe(value)
    # The windowed twin shares the cumulative histogram's name on purpose:
    # the exposition must keep the families distinct (``_window`` suffix).
    windowed = registry.windowed_histogram("rerank.latency_ms", reranker="mmr")
    windowed._ring.clock = fake
    for value in (5.0, 6.0, 7.0):
        windowed.observe(value)
    degraded = registry.windowed_counter("resilience.degraded")
    degraded._ring.clock = fake
    degraded.add(2.0)
    meter = registry.meter("rerank.rate")
    meter._clock = fake
    meter._started = fake.now
    meter._last_tick = fake.now
    meter.mark(10.0)
    fake.advance(10.0)  # two meter ticks; window samples all stay live
    return registry


class TestRenderOpenmetrics:
    def test_golden_exposition(self, golden_store):
        text = render_openmetrics(_populated_registry())
        golden_store.check("obs_openmetrics", {"lines": text.splitlines()})

    def test_counter_total_suffix_and_eof(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        text = render_openmetrics(registry)
        assert "# TYPE a_b counter" in text
        assert "a_b_total 1" in text
        assert text.endswith("# EOF\n")

    def test_name_sanitization(self):
        registry = MetricsRegistry()
        registry.gauge("0weird.name-x").set(1.0)
        text = render_openmetrics(registry)
        assert "_0weird_name_x 1" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.gauge("g", path='a"b\\c\nd').set(1.0)
        text = render_openmetrics(registry)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_histogram_renders_as_summary_with_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat.ms")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        text = render_openmetrics(registry)
        assert "# TYPE lat_ms summary" in text
        assert 'lat_ms{quantile="0.5"} 2' in text
        assert "lat_ms_sum 6" in text
        assert "lat_ms_count 3" in text

    def test_windowed_family_carries_window_label(self):
        registry = MetricsRegistry()
        registry.windowed_histogram("lat.ms").observe(1.0)
        text = render_openmetrics(registry)
        assert "# TYPE lat_ms_window summary" in text
        assert 'window="60s"' in text


class TestSnapshots:
    def test_write_openmetrics_atomic_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = write_openmetrics(tmp_path / "metrics.prom", registry)
        assert path.read_text().endswith("# EOF\n")

    def test_write_snapshot_payload(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        path = write_snapshot(tmp_path / "m.json", registry, extra={"run": "x"})
        payload = json.loads(path.read_text())
        assert payload["run"] == "x"
        assert payload["ts"] > 0
        assert payload["metrics"] == registry.collect()

    def test_snapshot_exporter_writes_periodically_and_on_stop(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        exporter = SnapshotExporter(
            tmp_path / "m.json", interval_s=0.02, registry=registry
        )
        with exporter:
            deadline = time.monotonic() + 2.0
            while exporter.writes == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
        assert exporter.writes >= 2  # at least one periodic + the final write
        payload = json.loads((tmp_path / "m.json").read_text())
        assert payload["metrics"][0]["name"] == "c"

    def test_snapshot_exporter_rejects_bad_interval(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotExporter(tmp_path / "m.json", interval_s=0.0)


class TestSnapshotExporterMultiProcess:
    """Mirrors JsonlSink's ownership contract: refuse or fan out per pid."""

    def test_foreign_pid_write_is_refused_without_per_pid(self, tmp_path):
        exporter = SnapshotExporter(
            tmp_path / "metrics.json", interval_s=60.0, registry=MetricsRegistry()
        )
        exporter._owner_pid += 1  # what a forked child would observe
        with pytest.raises(RuntimeError, match="per_pid=True"):
            exporter._write()

    def test_per_pid_exporter_rebinds_to_its_own_file(self, tmp_path):
        import os

        from repro.obs.runlog import per_pid_path

        registry = MetricsRegistry()
        registry.counter("dist.steps").inc(5)
        exporter = SnapshotExporter(
            tmp_path / "metrics.json",
            interval_s=60.0,
            registry=registry,
            per_pid=True,
        )
        assert exporter.path == per_pid_path(tmp_path / "metrics.json")
        exporter._owner_pid -= 1  # simulate inheriting across a fork
        exporter._write()  # rebinds instead of raising
        assert exporter._owner_pid == os.getpid()
        assert exporter.path == per_pid_path(tmp_path / "metrics.json")
        snapshot = json.loads(exporter.path.read_text())
        assert any(m["name"] == "dist.steps" for m in snapshot["metrics"])
