"""Checkpoint durability tests: atomicity, corruption recovery, kill/resume.

The headline guarantee: a ``train_rapid`` run killed mid-training and
restarted with ``checkpoint=CheckpointConfig(...)`` reproduces the
uninterrupted run's loss curve and final parameters **bit-identically**.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import RapidConfig, TrainConfig, make_rapid_variant, train_rapid
from repro.data import RankingRequest
from repro.nn.serialization import CheckpointCorruptError
from repro.resilience import (
    CheckpointConfig,
    CheckpointManager,
    FaultSpec,
    chaos,
    load_checkpoint,
    save_checkpoint,
)
from repro.utils.atomicio import checksum_sidecar_path, verify_checksum_sidecar
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def training_setup(taobao_world):
    world = taobao_world
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = []
    for _ in range(12):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(world.config.num_items, size=10, replace=False)
        clicks = (rng.random(10) < 0.3).astype(float)
        requests.append(
            RankingRequest(user, items, rng.normal(size=10), clicks=clicks)
        )
    config = RapidConfig(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=4,
        seed=0,
    )
    return world, histories, requests, config


def _fresh(training_setup):
    """A new model + optimizer + rng triple (same seeds every call)."""
    _, _, _, config = training_setup
    model = make_rapid_variant("rapid-pro", config)
    optimizer = nn.Adam(model.parameters(), lr=1e-2)
    rng = make_rng(1)
    return model, optimizer, rng


def _train(training_setup, *, epochs: int, checkpoint=None):
    world, histories, requests, config = training_setup
    model = make_rapid_variant("rapid-pro", config)
    losses = train_rapid(
        model,
        requests,
        world.catalog,
        world.population,
        histories,
        config=TrainConfig(epochs=epochs, batch_size=4, seed=0),
        checkpoint=checkpoint,
    )
    return model, losses


class TestSaveLoadRoundTrip:
    def test_round_trip_preserves_everything(self, training_setup, tmp_path):
        model, optimizer, rng = _fresh(training_setup)
        rng.normal(size=7)  # move the generator off its seed state
        path = tmp_path / "ckpt.npz"
        save_checkpoint(
            path,
            model=model,
            optimizer=optimizer,
            epoch=3,
            losses=[0.9, 0.8, 0.7, 0.65],
            rng=rng,
        )
        assert checksum_sidecar_path(path).exists()
        assert verify_checksum_sidecar(path) is True

        ckpt = load_checkpoint(path)
        assert ckpt.epoch == 3
        assert ckpt.losses == [0.9, 0.8, 0.7, 0.65]
        for name, array in model.state_dict().items():
            np.testing.assert_array_equal(ckpt.model_state[name], array)
        assert ckpt.rng_state == rng.bit_generator.state

        # Restoring into fresh objects reproduces optimizer + rng exactly.
        model2, optimizer2, rng2 = _fresh(training_setup)
        model2.load_state_dict(ckpt.model_state)
        optimizer2.load_state_dict(ckpt.optimizer_state)
        rng2.bit_generator.state = ckpt.rng_state
        assert optimizer2.state_dict()["step"] == optimizer.state_dict()["step"]
        for mine, theirs in zip(
            optimizer2.state_dict()["m"], optimizer.state_dict()["m"]
        ):
            np.testing.assert_array_equal(mine, theirs)
        np.testing.assert_array_equal(rng2.normal(size=5), rng.normal(size=5))

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "absent.npz")

    def test_checksum_mismatch_is_corrupt(self, training_setup, tmp_path):
        model, optimizer, rng = _fresh(training_setup)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(
            path, model=model, optimizer=optimizer, epoch=0, losses=[1.0], rng=rng
        )
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF  # flip one byte mid-file
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError, match="checksum mismatch"):
            load_checkpoint(path)

    def test_truncated_archive_is_corrupt(self, training_setup, tmp_path):
        model, optimizer, rng = _fresh(training_setup)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(
            path, model=model, optimizer=optimizer, epoch=0, losses=[1.0], rng=rng
        )
        path.write_bytes(path.read_bytes()[:100])
        checksum_sidecar_path(path).unlink()  # isolate the zip-level check
        with pytest.raises(CheckpointCorruptError, match="unreadable archive"):
            load_checkpoint(path)

    def test_missing_version_field_is_corrupt(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(CheckpointCorruptError, match="format-version"):
            load_checkpoint(path)

    def test_newer_version_is_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            **{
                "__format_version__": np.array(999, dtype=np.int64),
                "meta/epoch": np.array(0),
                "meta/losses": np.zeros(1),
                "optim/__scalars__": np.array("{}"),
            },
        )
        with pytest.raises(CheckpointCorruptError, match="newer than supported"):
            load_checkpoint(path)


class TestManager:
    def test_save_cadence(self, tmp_path):
        config = CheckpointConfig(directory=tmp_path, every_epochs=2)
        manager = CheckpointManager(config)
        assert [manager.should_save(e) for e in range(4)] == [
            False,
            True,
            False,
            True,
        ]

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(directory=tmp_path, every_epochs=0)
        with pytest.raises(ValueError):
            CheckpointConfig(directory=tmp_path, keep_last=0)

    def test_rotation_keeps_last_k(self, training_setup, tmp_path):
        model, optimizer, rng = _fresh(training_setup)
        manager = CheckpointManager(CheckpointConfig(directory=tmp_path, keep_last=2))
        for epoch in range(5):
            manager.save(
                model=model,
                optimizer=optimizer,
                epoch=epoch,
                losses=[0.5] * (epoch + 1),
                rng=rng,
            )
        assert manager.epochs_on_disk() == [3, 4]
        # Sidecars rotate with their archives.
        sidecars = sorted(p.name for p in tmp_path.glob("*.sha256"))
        assert sidecars == ["ckpt_000003.npz.sha256", "ckpt_000004.npz.sha256"]

    def test_latest_quarantines_corrupt_and_falls_back(
        self, training_setup, tmp_path
    ):
        model, optimizer, rng = _fresh(training_setup)
        manager = CheckpointManager(CheckpointConfig(directory=tmp_path))
        for epoch in range(2):
            manager.save(
                model=model, optimizer=optimizer, epoch=epoch, losses=[0.5], rng=rng
            )
        newest = manager.path_for(1)
        newest.write_bytes(b"not a zip archive at all")
        found = manager.latest()
        assert found is not None
        path, ckpt = found
        assert ckpt.epoch == 0 and path == manager.path_for(0)
        assert not newest.exists()
        assert (tmp_path / "ckpt_000001.npz.corrupt").exists()
        assert (tmp_path / "ckpt_000001.npz.sha256.corrupt").exists()

    def test_restore_empty_directory_returns_none(self, training_setup, tmp_path):
        model, optimizer, rng = _fresh(training_setup)
        manager = CheckpointManager(CheckpointConfig(directory=tmp_path / "empty"))
        assert manager.restore(model=model, optimizer=optimizer, rng=rng) is None

    def test_no_temp_files_left_behind(self, training_setup, tmp_path):
        model, optimizer, rng = _fresh(training_setup)
        manager = CheckpointManager(CheckpointConfig(directory=tmp_path))
        manager.save(model=model, optimizer=optimizer, epoch=0, losses=[1.0], rng=rng)
        assert list(tmp_path.glob("*.tmp")) == []


class TestKillResumeParity:
    def test_killed_and_resumed_run_is_bit_identical(
        self, training_setup, tmp_path
    ):
        """The acceptance criterion: loss curves agree to the last bit."""
        _, reference_losses = _train(training_setup, epochs=4)

        ckpt = CheckpointConfig(directory=tmp_path / "run")
        with chaos(FaultSpec("train.epoch", after=2, times=1)):
            with pytest.raises(Exception):
                _train(training_setup, epochs=4, checkpoint=ckpt)

        resumed_model, resumed_losses = _train(
            training_setup, epochs=4, checkpoint=ckpt
        )
        assert resumed_losses == reference_losses  # exact, not approx

        reference_model, _ = _train(training_setup, epochs=4)
        for name, array in reference_model.state_dict().items():
            np.testing.assert_array_equal(resumed_model.state_dict()[name], array)

    def test_resume_skips_completed_epochs(self, training_setup, tmp_path):
        ckpt = CheckpointConfig(directory=tmp_path / "run")
        _train(training_setup, epochs=2, checkpoint=ckpt)
        # Asking for 2 epochs again: everything is done, zero new epochs run.
        manager = CheckpointManager(ckpt)
        before = manager.epochs_on_disk()
        _, losses = _train(training_setup, epochs=2, checkpoint=ckpt)
        assert len(losses) == 2
        assert manager.epochs_on_disk() == before

    def test_resume_after_corrupt_latest_replays_from_predecessor(
        self, training_setup, tmp_path
    ):
        _, reference_losses = _train(training_setup, epochs=3)
        ckpt = CheckpointConfig(directory=tmp_path / "run")
        _train(training_setup, epochs=2, checkpoint=ckpt)
        manager = CheckpointManager(ckpt)
        manager.path_for(1).write_bytes(b"bit rot")  # corrupt the newest
        _, losses = _train(training_setup, epochs=3, checkpoint=ckpt)
        assert losses == reference_losses


class TestSaveRetry:
    """The atomic write inside save_checkpoint runs under SAVE_RETRY_POLICY."""

    def test_injected_save_fault_is_retried_through_the_counter(
        self, training_setup, tmp_path
    ):
        from repro.obs import get_registry

        model, optimizer, rng = _fresh(training_setup)
        retries = get_registry().counter(
            "resilience.retries", site="checkpoint.save"
        )
        before = retries.value
        slept = []
        with chaos(FaultSpec("checkpoint.save", times=2)) as plan:
            path = save_checkpoint(
                tmp_path / "ckpt.npz",
                model=model,
                optimizer=optimizer,
                epoch=0,
                losses=[1.0],
                rng=rng,
                fsync=False,
                sleep=slept.append,
            )
            assert plan.fires("checkpoint.save") == 2
        assert verify_checksum_sidecar(path) is True
        assert retries.value - before == 2
        assert len(slept) == 2  # backoff went through the injectable sleeper

    def test_strict_policy_raises_immediately(self, training_setup, tmp_path):
        from repro.resilience import InjectedFault, RetryPolicy

        model, optimizer, _ = _fresh(training_setup)
        slept = []
        strict = RetryPolicy(max_attempts=5, fatal=(InjectedFault,))
        with chaos(FaultSpec("checkpoint.save", times=None)):
            with pytest.raises(InjectedFault):
                save_checkpoint(
                    tmp_path / "ckpt.npz",
                    model=model,
                    optimizer=optimizer,
                    epoch=0,
                    losses=[1.0],
                    fsync=False,
                    retry_policy=strict,
                    sleep=slept.append,
                )
        assert slept == []  # fatal: no backoff, no second attempt

    def test_extra_arrays_round_trip(self, training_setup, tmp_path):
        model, optimizer, rng = _fresh(training_setup)
        extra = {
            "rank": np.array(3, dtype=np.int64),
            "gain": np.arange(4.0),
        }
        path = save_checkpoint(
            tmp_path / "ckpt.npz",
            model=model,
            optimizer=optimizer,
            epoch=1,
            losses=[0.5, 0.4],
            rng=rng,
            fsync=False,
            extra=extra,
        )
        checkpoint = load_checkpoint(path)
        assert int(checkpoint.extra["rank"]) == 3
        assert np.array_equal(checkpoint.extra["gain"], np.arange(4.0))


class TestConcurrentWriters:
    """Two processes share one checkpoint directory (the dist layout's
    failure mode if per-rank isolation is ever misconfigured): rotation
    stays bounded, nothing healthy is quarantined, latest() still loads."""

    def test_rotation_and_latest_survive_two_writers(
        self, training_setup, tmp_path
    ):
        import multiprocessing as mp

        config = CheckpointConfig(
            directory=tmp_path, keep_last=3, fsync=False
        )

        def writer(parity: int) -> None:
            model, optimizer, _ = _fresh(training_setup)
            manager = CheckpointManager(config)
            for epoch in range(parity, 16, 2):
                manager.save(
                    model=model,
                    optimizer=optimizer,
                    epoch=epoch,
                    losses=[0.5] * (epoch + 1),
                )

        ctx = mp.get_context("fork")
        procs = [ctx.Process(target=writer, args=(parity,)) for parity in (0, 1)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert [proc.exitcode for proc in procs] == [0, 0]

        manager = CheckpointManager(config)
        epochs = manager.epochs_on_disk()
        # the globally-last rotation saw (nearly) the final directory:
        # keep_last survivors, plus at most one straggler from a racing
        # final write
        assert 1 <= len(epochs) <= config.keep_last + 1
        # every surviving archive is healthy — rotation never tore one
        for epoch in epochs:
            assert verify_checksum_sidecar(manager.path_for(epoch)) is True
        # and none were quarantined: absence-vs-corruption was classified
        assert not list(tmp_path.glob("*.corrupt"))
        assert not [
            p for p in tmp_path.iterdir() if ".tmp" in p.name
        ]  # no atomic-write droppings
        path, checkpoint = manager.latest()
        assert checkpoint.epoch == max(epochs)
        assert len(checkpoint.losses) == checkpoint.epoch + 1

    def test_quarantine_still_works_after_concurrent_history(
        self, training_setup, tmp_path
    ):
        model, optimizer, _ = _fresh(training_setup)
        manager = CheckpointManager(
            CheckpointConfig(directory=tmp_path, keep_last=3, fsync=False)
        )
        for epoch in range(3):
            manager.save(
                model=model, optimizer=optimizer, epoch=epoch, losses=[0.5]
            )
        manager.path_for(2).write_bytes(b"torn by a racing writer")
        path, checkpoint = manager.latest()
        assert checkpoint.epoch == 1  # fell back one epoch
        assert (tmp_path / (manager.path_for(2).name + ".corrupt")).exists()
