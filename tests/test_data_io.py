"""Tests for dataset persistence (save/load round trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    RankingRequest,
    load_catalog,
    load_histories,
    load_population,
    load_requests,
    save_catalog,
    save_histories,
    save_population,
    save_requests,
)


class TestCatalogIO:
    def test_roundtrip(self, taobao_world, tmp_path):
        catalog = taobao_world.catalog
        path = save_catalog(catalog, tmp_path / "catalog")
        loaded = load_catalog(path)
        assert np.array_equal(loaded.features, catalog.features)
        assert np.array_equal(loaded.coverage, catalog.coverage)
        assert loaded.bids is None

    def test_roundtrip_with_bids(self, appstore_world, tmp_path):
        path = save_catalog(appstore_world.catalog, tmp_path / "apps")
        loaded = load_catalog(path)
        assert np.array_equal(loaded.bids, appstore_world.catalog.bids)


class TestPopulationIO:
    def test_roundtrip(self, taobao_world, tmp_path):
        population = taobao_world.population
        path = save_population(population, tmp_path / "pop")
        loaded = load_population(path)
        assert np.array_equal(loaded.features, population.features)
        assert np.array_equal(loaded.topic_preference, population.topic_preference)
        assert np.array_equal(loaded.diversity_weight, population.diversity_weight)


class TestRequestsIO:
    def _requests(self, with_clicks=True):
        rng = np.random.default_rng(0)
        return [
            RankingRequest(
                user_id=i,
                items=rng.choice(50, size=6, replace=False),
                initial_scores=rng.normal(size=6),
                clicks=(rng.random(6) < 0.3).astype(float) if with_clicks else None,
                fully_observed=bool(i % 2),
            )
            for i in range(5)
        ]

    def test_roundtrip_with_clicks(self, tmp_path):
        requests = self._requests()
        path = save_requests(requests, tmp_path / "reqs")
        loaded = load_requests(path)
        assert len(loaded) == 5
        for a, b in zip(requests, loaded):
            assert a.user_id == b.user_id
            assert np.array_equal(a.items, b.items)
            assert np.allclose(a.initial_scores, b.initial_scores)
            assert np.array_equal(a.clicks, b.clicks)
            assert a.fully_observed == b.fully_observed

    def test_roundtrip_without_clicks(self, tmp_path):
        requests = self._requests(with_clicks=False)
        loaded = load_requests(save_requests(requests, tmp_path / "reqs"))
        assert all(r.clicks is None for r in loaded)

    def test_empty_list_raises(self, tmp_path):
        with pytest.raises(ValueError):
            save_requests([], tmp_path / "empty")

    def test_unequal_lengths_raise(self, tmp_path):
        requests = [
            RankingRequest(0, np.arange(3), np.zeros(3)),
            RankingRequest(1, np.arange(4), np.zeros(4)),
        ]
        with pytest.raises(ValueError):
            save_requests(requests, tmp_path / "bad")


class TestHistoriesIO:
    def test_roundtrip_variable_lengths(self, tmp_path):
        histories = [np.array([3, 1, 4]), np.array([], dtype=np.int64), np.array([9])]
        loaded = load_histories(save_histories(histories, tmp_path / "hist"))
        assert len(loaded) == 3
        for a, b in zip(histories, loaded):
            assert np.array_equal(a, b)
