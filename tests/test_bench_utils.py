"""Benchmark tooling tests: trajectory upsert + the recorded PR 2 snapshot.

``benchmarks/`` is not a package (pytest only collects ``tests/``), so
``bench_utils`` is loaded by file path the same way the benchmark scripts
import it by directory.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"


def _load_bench_utils():
    spec = importlib.util.spec_from_file_location(
        "bench_utils_under_test", BENCH_DIR / "bench_utils.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _redirect_paths(module, monkeypatch, tmp_path):
    monkeypatch.setattr(module, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path / "results")
    monkeypatch.setattr(module, "TRAJECTORY_PATH", tmp_path / "results" / "t.jsonl")


class TestPublishBenchmark:
    def test_writes_snapshot_and_trajectory(self, monkeypatch, tmp_path):
        bench_utils = _load_bench_utils()
        _redirect_paths(bench_utils, monkeypatch, tmp_path)

        path = bench_utils.publish_benchmark("prX", {"ops": [{"op": "a"}]})
        assert path == tmp_path / "BENCH_prX.json"
        snapshot = json.loads(path.read_text())
        assert snapshot["tag"] == "prX"
        assert snapshot["ops"] == [{"op": "a"}]
        assert bench_utils.read_trajectory() == [snapshot]

    def test_rerun_replaces_own_tag_and_keeps_others(self, monkeypatch, tmp_path):
        bench_utils = _load_bench_utils()
        _redirect_paths(bench_utils, monkeypatch, tmp_path)

        bench_utils.publish_benchmark("pr1", {"n": 1})
        bench_utils.publish_benchmark("pr2", {"n": 2})
        bench_utils.publish_benchmark("pr1", {"n": 3})

        rows = bench_utils.read_trajectory()
        assert [(r["tag"], r["n"]) for r in rows] == [("pr2", 2), ("pr1", 3)]
        lines = bench_utils.TRAJECTORY_PATH.read_text().splitlines()
        assert len(lines) == 2

    def test_read_trajectory_empty_when_missing(self, monkeypatch, tmp_path):
        bench_utils = _load_bench_utils()
        _redirect_paths(bench_utils, monkeypatch, tmp_path)
        assert bench_utils.read_trajectory() == []


class TestRecordedBenchmarkSnapshot:
    """The committed BENCH_pr2.json must carry the acceptance evidence."""

    def test_schema_and_lstm_step_speedup(self):
        snapshot = json.loads((REPO_ROOT / "BENCH_pr2.json").read_text())
        assert snapshot["tag"] == "pr2"
        ops = {row["op"]: row for row in snapshot["ops"]}
        for required in ("lstm_step", "gru_step", "rapid_train_step"):
            assert required in ops
        for row in ops.values():
            for key in ("median_ms", "p95_ms", "speedup_vs_unfused"):
                assert isinstance(row[key], float)
        assert ops["lstm_step"]["speedup_vs_unfused"] >= 3.0
        assert ops["rapid_train_step"]["speedup_vs_unfused"] > 1.0
