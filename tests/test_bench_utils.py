"""Benchmark tooling tests: trajectory upsert + the recorded PR 2 snapshot.

``benchmarks/`` is not a package (pytest only collects ``tests/``), so
``bench_utils`` is loaded by file path the same way the benchmark scripts
import it by directory.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"


def _load_bench_utils():
    spec = importlib.util.spec_from_file_location(
        "bench_utils_under_test", BENCH_DIR / "bench_utils.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _redirect_paths(module, monkeypatch, tmp_path):
    monkeypatch.setattr(module, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(module, "RESULTS_DIR", tmp_path / "results")
    monkeypatch.setattr(module, "TRAJECTORY_PATH", tmp_path / "results" / "t.jsonl")


class TestPublishBenchmark:
    def test_writes_snapshot_and_trajectory(self, monkeypatch, tmp_path):
        bench_utils = _load_bench_utils()
        _redirect_paths(bench_utils, monkeypatch, tmp_path)

        path = bench_utils.publish_benchmark("prX", {"ops": [{"op": "a"}]})
        assert path == tmp_path / "BENCH_prX.json"
        snapshot = json.loads(path.read_text())
        assert snapshot["tag"] == "prX"
        assert snapshot["ops"] == [{"op": "a"}]
        assert bench_utils.read_trajectory() == [snapshot]

    def test_rerun_keeps_history_and_other_tags(self, monkeypatch, tmp_path):
        bench_utils = _load_bench_utils()
        _redirect_paths(bench_utils, monkeypatch, tmp_path)

        bench_utils.publish_benchmark("pr1", {"n": 1})
        bench_utils.publish_benchmark("pr2", {"n": 2})
        bench_utils.publish_benchmark("pr1", {"n": 3})

        rows = bench_utils.read_trajectory()
        # Re-running a tag appends (history for the regression sentinel),
        # chronological per tag, other tags untouched.
        assert [(r["tag"], r["n"]) for r in rows] == [
            ("pr1", 1),
            ("pr2", 2),
            ("pr1", 3),
        ]

    def test_history_capped_per_tag(self, monkeypatch, tmp_path):
        bench_utils = _load_bench_utils()
        _redirect_paths(bench_utils, monkeypatch, tmp_path)
        monkeypatch.setattr(bench_utils, "TRAJECTORY_KEEP", 3)

        bench_utils.publish_benchmark("other", {"n": 0})
        for n in range(5):
            bench_utils.publish_benchmark("pr1", {"n": n})

        rows = bench_utils.read_trajectory()
        pr1 = [r["n"] for r in rows if r["tag"] == "pr1"]
        assert pr1 == [2, 3, 4]  # oldest dropped, order preserved
        assert [r["n"] for r in rows if r["tag"] == "other"] == [0]

    def test_read_trajectory_empty_when_missing(self, monkeypatch, tmp_path):
        bench_utils = _load_bench_utils()
        _redirect_paths(bench_utils, monkeypatch, tmp_path)
        assert bench_utils.read_trajectory() == []

    def test_publish_runs_sentinel_strict(self, monkeypatch, tmp_path):
        bench_utils = _load_bench_utils()
        _redirect_paths(bench_utils, monkeypatch, tmp_path)
        monkeypatch.setenv("REPRO_BENCH_REGRESS", "strict")

        bench_utils.publish_benchmark("prX", {"step_ms": 10.0})
        # 3x slower than the prior entry: the sentinel must fail the publish.
        import pytest

        with pytest.raises(AssertionError, match="REGRESSION"):
            bench_utils.publish_benchmark("prX", {"step_ms": 30.0})

    def test_publish_sentinel_warns_by_default(self, monkeypatch, tmp_path, capsys):
        bench_utils = _load_bench_utils()
        _redirect_paths(bench_utils, monkeypatch, tmp_path)
        monkeypatch.delenv("REPRO_BENCH_REGRESS", raising=False)

        bench_utils.publish_benchmark("prX", {"step_ms": 10.0})
        bench_utils.publish_benchmark("prX", {"step_ms": 30.0})  # no raise
        assert "REGRESSION" in capsys.readouterr().out


class TestInterleavedMinOfK:
    def test_takes_min_across_repeats(self):
        bench_utils = _load_bench_utils()
        samples = {"a": iter([3.0, 1.0, 2.0]), "b": iter([5.0, 4.0, 6.0])}
        result = bench_utils.interleaved_min_of_k(
            [("a", lambda: next(samples["a"])), ("b", lambda: next(samples["b"]))],
            repeats=3,
        )
        assert result == {"a": 1.0, "b": 4.0}

    def test_side_effect_steps_interleave(self):
        bench_utils = _load_bench_utils()
        calls: list[str] = []

        def step(name):
            def run():
                calls.append(name)
                return 1.0

            return run

        bench_utils.interleaved_min_of_k(
            [("x", step("x")), (None, lambda: calls.append("cycle")), ("y", step("y"))],
            repeats=2,
        )
        assert calls == ["x", "cycle", "y", "x", "cycle", "y"]

    def test_rejects_duplicate_names_and_bad_repeats(self):
        import pytest

        bench_utils = _load_bench_utils()
        with pytest.raises(ValueError):
            bench_utils.interleaved_min_of_k(
                [("a", lambda: 1.0), ("a", lambda: 1.0)]
            )
        with pytest.raises(ValueError):
            bench_utils.interleaved_min_of_k([("a", lambda: 1.0)], repeats=0)


class TestRecordedBenchmarkSnapshot:
    """The committed BENCH_pr2.json must carry the acceptance evidence."""

    def test_schema_and_lstm_step_speedup(self):
        snapshot = json.loads((REPO_ROOT / "BENCH_pr2.json").read_text())
        assert snapshot["tag"] == "pr2"
        ops = {row["op"]: row for row in snapshot["ops"]}
        for required in ("lstm_step", "gru_step", "rapid_train_step"):
            assert required in ops
        for row in ops.values():
            for key in ("median_ms", "p95_ms", "speedup_vs_unfused"):
                assert isinstance(row[key], float)
        assert ops["lstm_step"]["speedup_vs_unfused"] >= 3.0
        assert ops["rapid_train_step"]["speedup_vs_unfused"] > 1.0
