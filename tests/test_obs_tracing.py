"""Tests for span tracing: nesting, exception safety, exports, decorator."""

from __future__ import annotations

import json

import pytest

from repro.obs import Tracer, trace


@pytest.fixture()
def tracer():
    return Tracer()


class TestNesting:
    def test_children_attach_to_parent(self, tracer):
        with trace("outer", tracer):
            with trace("inner", tracer):
                pass
            with trace("inner2", tracer):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "inner2"]
        assert root.children == sorted(
            root.children, key=lambda s: s.start_s
        )

    def test_sequential_roots(self, tracer):
        with trace("a", tracer):
            pass
        with trace("b", tracer):
            pass
        assert [r.name for r in tracer.roots] == ["a", "b"]

    def test_durations_nest(self, tracer):
        with trace("outer", tracer):
            with trace("inner", tracer):
                pass
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_walk_paths(self, tracer):
        with trace("a", tracer):
            with trace("b", tracer):
                pass
        paths = [path for _, _, path in tracer.walk()]
        assert paths == ["a", "a/b"]


class TestExceptionSafety:
    def test_span_closed_and_flagged_on_error(self, tracer):
        with pytest.raises(RuntimeError, match="boom"):
            with trace("risky", tracer):
                raise RuntimeError("boom")
        root = tracer.roots[0]
        assert root.end_s is not None
        assert "RuntimeError" in root.error

    def test_stack_unwinds_after_error(self, tracer):
        with pytest.raises(ValueError):
            with trace("outer", tracer):
                with trace("inner", tracer):
                    raise ValueError("x")
        # A fresh span after the failure is a new root, not a child.
        with trace("after", tracer):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "after"]
        assert tracer.current() is None


class TestDecorator:
    def test_decorated_function_recorded(self, tracer):
        @trace("compute", tracer)
        def compute(x):
            return x * 2

        assert compute(21) == 42
        assert compute(1) == 2
        assert [r.name for r in tracer.roots] == ["compute", "compute"]


class TestExports:
    def test_format_tree(self, tracer):
        with trace("outer", tracer):
            with trace("inner", tracer):
                pass
        tree = tracer.format_tree()
        lines = tree.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "ms" in lines[0]

    def test_chrome_trace_schema(self, tracer):
        with trace("outer", tracer):
            with trace("inner", tracer):
                pass
        events = tracer.to_chrome_trace()
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["tid"], int)
        names = {e["name"] for e in events}
        assert names == {"outer", "inner"}
        # Must round-trip through JSON (chrome://tracing loads a file).
        json.loads(json.dumps(events))

    def test_chrome_trace_empty(self, tracer):
        assert tracer.to_chrome_trace() == []

    def test_error_lands_in_chrome_args(self, tracer):
        with pytest.raises(RuntimeError):
            with trace("bad", tracer):
                raise RuntimeError("boom")
        (event,) = tracer.to_chrome_trace()
        assert "boom" in event["args"]["error"]


class TestLimitsAndReset:
    def test_max_roots_drops_and_counts(self):
        tracer = Tracer(max_roots=2)
        for i in range(4):
            with trace(f"s{i}", tracer):
                pass
        assert len(tracer.roots) == 2
        assert tracer.dropped_roots == 2

    def test_reset(self, tracer):
        with trace("a", tracer):
            pass
        tracer.reset()
        assert tracer.roots == []
        assert tracer.dropped_roots == 0
