"""Full-pipeline parity: fused vs composed kernels on real RAPID training.

The per-op oracle (tests/test_testing_oracle.py) proves kernel-level
agreement; this suite proves it *composes* — three epochs of RAPID
training on a tiny taobao world must produce the same loss curve under
``REPRO_NN_FUSED=1`` and ``=0`` to 1e-9, so no fused/composed divergence
can hide behind optimizer noise.  Plus finite-difference gradchecks for
the layers with bespoke backward paths on their edge shapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trainer import TrainConfig
from repro.eval import ExperimentConfig, make_reranker, prepare_bundle
from repro.nn import Dropout, Embedding, LayerNorm, Tensor
from repro.nn.kernels import use_fused
from repro.testing import differential_check


@pytest.fixture(scope="module")
def parity_bundle():
    return prepare_bundle(
        ExperimentConfig(
            dataset="taobao",
            scale="tiny",
            tradeoff=0.5,
            list_length=8,
            num_train_requests=60,
            num_test_requests=20,
            ranker_interactions=500,
            hidden=8,
            train=TrainConfig(epochs=3, batch_size=32),
            seed=0,
        )
    )


def _train_losses(bundle, fused: bool) -> list[float]:
    with use_fused(fused):
        reranker = make_reranker("rapid-pro", bundle)
        reranker.fit(
            bundle.train_requests,
            bundle.world.catalog,
            bundle.world.population,
            bundle.histories,
        )
    return [float(loss) for loss in reranker.training_losses]


@pytest.mark.slow
class TestTrainingParity:
    def test_three_epoch_loss_curves_match(self, parity_bundle):
        fused = _train_losses(parity_bundle, fused=True)
        composed = _train_losses(parity_bundle, fused=False)
        assert len(fused) == len(composed) >= 3
        np.testing.assert_allclose(
            fused,
            composed,
            rtol=0.0,
            atol=1e-9,
            err_msg="fused and composed training trajectories diverged",
        )


class TestGradcheckEdgeShapes:
    """Finite-difference gradchecks for layers with bespoke backwards."""

    def test_embedding_with_repeated_and_padding_ids(self):
        table = Embedding(6, 4, padding_idx=0, rng=np.random.default_rng(0))
        ids = np.array([[1, 1, 0], [5, 1, 0]])  # repeats + padding rows

        def fn(weight):
            # The layer's lookup is a fancy-index gather; repeated ids make
            # the backward accumulate (np.add.at), the classic scatter bug.
            return weight[ids.reshape(-1)].reshape(2, 3, 4).tanh()

        report = differential_check(
            fn,
            (np.array(table.weight.data, copy=True),),
            name="embedding-gather",
            input_names=("weight",),
        )
        assert report.passed, report.format()

    def test_dropout_eval_is_identity_with_clean_gradient(self):
        dropout = Dropout(p=0.7, seed=1).eval()

        def fn(x):
            return dropout(x) * 2.0

        arrays = (np.random.default_rng(2).normal(size=(3, 5)),)
        report = differential_check(fn, arrays, name="dropout-eval",
                                    input_names=("x",))
        assert report.passed, report.format()
        out = dropout(Tensor(arrays[0]))
        assert (out.data == arrays[0]).all()

    @pytest.mark.parametrize(
        "shape",
        [(1, 4), (3, 1, 4), (2, 4), (5, 3, 4)],
        ids=["single-row", "singleton-middle", "plain", "rank3"],
    )
    def test_layernorm_edge_shapes(self, shape):
        norm = LayerNorm(shape[-1])

        def fn(x):
            return norm(x)

        arrays = (np.random.default_rng(3).normal(size=shape),)
        report = differential_check(fn, arrays, name=f"layernorm-{shape}",
                                    input_names=("x",))
        assert report.passed, report.format()

    def test_layernorm_constant_input_gradient_is_finite(self):
        # Zero variance: eps must keep the backward finite.
        norm = LayerNorm(4)
        x = Tensor(np.full((2, 4), 3.0), requires_grad=True)
        norm(x).sum().backward()
        assert np.isfinite(x.grad).all()
