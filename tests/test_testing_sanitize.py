"""Numerical sanitizer: trap semantics, obs integration, determinism checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.obs.metrics import get_registry, reset_registry
from repro.obs.runlog import MemorySink, RunLogger, set_run_logger
from repro.testing import (
    NumericalError,
    assert_deterministic,
    assert_finite,
    disable_sanitizer,
    enable_sanitizer,
    is_sanitizer_enabled,
    sanitize,
)
from repro.testing.sanitize import reset_determinism_fingerprints


@pytest.fixture(autouse=True)
def _sanitizer_teardown():
    yield
    disable_sanitizer()
    reset_determinism_fingerprints()


class TestForwardTraps:
    def test_nan_output_names_originating_op(self):
        with pytest.raises(NumericalError) as excinfo, sanitize():
            t = Tensor(np.array([1.0, -1.0]), requires_grad=True)
            with np.errstate(invalid="ignore"):
                t.log()
        err = excinfo.value
        assert err.op == "log"
        assert err.phase == "forward"
        assert err.kind == "nan"
        assert err.shape == (2,)

    def test_inf_output_is_trapped(self):
        with pytest.raises(NumericalError) as excinfo, sanitize():
            t = Tensor(np.array([1e300]), requires_grad=True)
            with np.errstate(over="ignore"):
                t * 1e300
        assert excinfo.value.kind == "inf"
        assert excinfo.value.op == "mul"

    def test_denormal_trap_is_opt_in(self):
        t = Tensor(np.array([1e-310]), requires_grad=True)
        with sanitize():  # denormals allowed by default
            t * 1.0
        with pytest.raises(NumericalError) as excinfo, sanitize(trap_denormal=True):
            t * 1.0
        assert excinfo.value.kind == "denormal"

    def test_clean_graph_passes_untouched(self):
        with assert_finite():
            t = Tensor(np.ones((3, 2)), requires_grad=True)
            loss = (t @ Tensor(np.ones((2, 4)))).tanh().sum()
            loss.backward()
        assert t.grad is not None
        assert np.isfinite(t.grad).all()


class TestBackwardTraps:
    def test_exploding_gradient_into_leaf_is_trapped(self):
        with pytest.raises(NumericalError) as excinfo, sanitize(max_grad=10.0):
            t = Tensor(np.array([2.0, 3.0]), requires_grad=True)
            (t * 100.0).sum().backward()
        err = excinfo.value
        assert err.phase == "backward"
        assert err.kind == "grad_magnitude"
        assert err.op == "mul"

    def test_gradient_under_limit_passes(self):
        with sanitize(max_grad=10.0):
            t = Tensor(np.array([2.0, 3.0]), requires_grad=True)
            (t * 2.0).sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0])

    def test_graph_built_inside_backward_outside_is_not_checked(self):
        # The op hook is gone after the context exits, but the wrapped
        # closure survives in the graph; the module flag gates it off.
        with sanitize(max_grad=1.0):
            t = Tensor(np.array([2.0]), requires_grad=True)
            out = (t * 100.0).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [100.0])


class TestLifecycle:
    def test_enable_disable_restores_ops(self):
        original = Tensor.__dict__["tanh"]
        enable_sanitizer()
        assert is_sanitizer_enabled()
        assert Tensor.__dict__["tanh"] is not original
        disable_sanitizer()
        assert not is_sanitizer_enabled()
        assert Tensor.__dict__["tanh"] is original

    def test_sanitize_restores_prior_enabled_state(self):
        enable_sanitizer()
        with sanitize():
            pass
        assert is_sanitizer_enabled()  # outer enable survives inner context
        disable_sanitizer()

    def test_fused_kernels_are_covered(self):
        real = Tensor.__dict__["lstm_cell_fused"]
        enable_sanitizer()
        try:
            assert Tensor.__dict__["lstm_cell_fused"] is not real
        finally:
            disable_sanitizer()
        assert Tensor.__dict__["lstm_cell_fused"] is real


class TestObsIntegration:
    def test_trap_emits_counter_and_runlog_event(self):
        reset_registry()
        sink = MemorySink()
        previous = set_run_logger(RunLogger(sink=sink, run_id="sanitize-test"))
        try:
            with pytest.raises(NumericalError), sanitize():
                t = Tensor(np.array([-1.0]), requires_grad=True)
                with np.errstate(invalid="ignore"):
                    t.log()
            traps = [
                m for m in get_registry().collect()
                if m["name"] == "sanitizer.traps"
            ]
            assert len(traps) == 1
            assert traps[0]["labels"] == {"kind": "nan", "op": "log"}
            assert traps[0]["value"] == 1
            events = sink.events("sanitizer.trap")
            assert len(events) == 1
            assert events[0]["op"] == "log"
            assert events[0]["kind"] == "nan"
            assert events[0]["phase"] == "forward"
        finally:
            set_run_logger(previous)
            reset_registry()


class TestAssertDeterministic:
    @staticmethod
    def _seeded_run():
        rng = np.random.default_rng(17)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        x.tanh().sum().backward()

    def test_identical_reruns_pass(self):
        with assert_deterministic(seed=17):
            self._seeded_run()
        with assert_deterministic(seed=17):
            self._seeded_run()

    def test_divergent_rerun_raises(self):
        with assert_deterministic(seed=17):
            self._seeded_run()
        with pytest.raises(NumericalError) as excinfo:
            with assert_deterministic(seed=17):
                x = Tensor(np.full((3, 4), 0.25), requires_grad=True)
                x.tanh().sum().backward()
        assert excinfo.value.kind == "nondeterminism"

    def test_different_seeds_record_independently(self):
        with assert_deterministic(seed=1):
            self._seeded_run()
        with assert_deterministic(seed=2):
            x = Tensor(np.zeros((2, 2)), requires_grad=True)
            (x + 1.0).sum().backward()

    def test_nesting_inside_sanitizer_is_rejected(self):
        enable_sanitizer()
        with pytest.raises(RuntimeError, match="cannot nest"):
            with assert_deterministic(seed=0):
                pass
