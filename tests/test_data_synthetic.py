"""Tests for the synthetic world generator and dataset builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    SyntheticWorld,
    WorldConfig,
    make_appstore_world,
    make_movielens_world,
    make_taobao_world,
)


class TestWorldConfig:
    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            WorldConfig(num_users=0)
        with pytest.raises(ValueError):
            WorldConfig(num_items=5, num_topics=5)


class TestSyntheticWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return SyntheticWorld(WorldConfig(num_users=30, num_items=80, seed=1))

    def test_relevance_matrix_is_probability(self, world):
        rel = world.relevance_matrix()
        assert rel.shape == (30, 80)
        assert (rel >= 0).all() and (rel <= 1).all()

    def test_relevance_matrix_cached(self, world):
        assert world.relevance_matrix() is world.relevance_matrix()

    def test_relevance_lookup_matches_matrix(self, world):
        rel = world.relevance_matrix()
        users = np.array([0, 3, 5])
        items = np.array([10, 20, 30])
        assert np.allclose(world.relevance(users, items), rel[users, items])

    def test_topic_preference_is_distribution(self, world):
        theta = world.population.topic_preference
        assert np.allclose(theta.sum(axis=1), 1.0)
        assert (theta >= 0).all()

    def test_diversity_weight_tracks_breadth(self, world):
        """Broad users (high theta entropy) should carry larger rho mass."""
        rho_total = world.population.diversity_weight.sum(axis=1)
        breadth = world.user_breadth
        broad = rho_total[breadth > np.median(breadth)].mean()
        narrow = rho_total[breadth <= np.median(breadth)].mean()
        assert broad > narrow

    def test_histories_prefer_relevant_items(self, world):
        histories = world.sample_histories(length=15)
        rel = world.relevance_matrix()
        in_history = np.mean(
            [rel[u, histories[u]].mean() for u in range(world.config.num_users)]
        )
        assert in_history > rel.mean() + 0.05

    def test_histories_have_requested_length(self, world):
        histories = world.sample_histories(length=12)
        assert all(len(h) == 12 for h in histories)
        assert all(len(np.unique(h)) == len(h) for h in histories)

    def test_ranker_training_labels_follow_relevance(self, world):
        data = world.sample_ranker_training(4000)
        assert data.shape == (4000, 3)
        rel = world.relevance(data[:, 0], data[:, 1])
        clicked_rel = rel[data[:, 2] == 1].mean()
        unclicked_rel = rel[data[:, 2] == 0].mean()
        assert clicked_rel > unclicked_rel

    def test_candidate_sets_shapes_and_uniqueness(self, world):
        users, candidates = world.sample_candidate_sets(20, 10)
        assert users.shape == (20,)
        assert candidates.shape == (20, 10)
        for row in candidates:
            assert len(np.unique(row)) == 10

    def test_candidate_sets_contain_relevant_items(self, world):
        users, candidates = world.sample_candidate_sets(30, 10)
        rel = world.relevance_matrix()
        cand_rel = np.mean([rel[u, c].mean() for u, c in zip(users, candidates)])
        assert cand_rel > rel.mean()

    def test_list_length_exceeding_catalog_raises(self, world):
        with pytest.raises(ValueError):
            world.sample_candidate_sets(1, 500)

    def test_coverage_shape_mismatch_raises(self):
        config = WorldConfig(num_users=10, num_items=30, seed=0)
        with pytest.raises(ValueError):
            SyntheticWorld(config, coverage=np.zeros((5, 5)))

    def test_seed_reproducibility(self):
        config = WorldConfig(num_users=10, num_items=30, seed=42)
        a = SyntheticWorld(config).relevance_matrix()
        b = SyntheticWorld(config).relevance_matrix()
        assert np.array_equal(a, b)


class TestDatasetBuilders:
    def test_taobao_soft_gmm_coverage(self, taobao_world):
        coverage = taobao_world.catalog.coverage
        assert coverage.shape[1] == 5
        assert np.allclose(coverage.sum(axis=1), 1.0, atol=1e-6)
        # GMM responsibilities are soft: not one-hot.
        assert coverage.max(axis=1).mean() < 0.999

    def test_movielens_multihot(self, movielens_world):
        coverage = movielens_world.catalog.coverage
        counts = (coverage > 0).sum(axis=1)
        assert counts.min() >= 1 and counts.max() <= 3
        assert np.allclose(coverage.sum(axis=1), 1.0)

    def test_appstore_onehot_with_bids(self, appstore_world):
        coverage = appstore_world.catalog.coverage
        assert set(np.unique(coverage)) <= {0.0, 1.0}
        assert np.allclose(coverage.sum(axis=1), 1.0)
        assert appstore_world.catalog.bids is not None
        assert (appstore_world.catalog.bids > 0).all()

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            make_taobao_world("huge")
        with pytest.raises(ValueError):
            make_movielens_world("huge")
        with pytest.raises(ValueError):
            make_appstore_world("huge")
