"""Theorem 5.1 — the O~(sqrt(n)) regret of linear RAPID.

Runs the LinUCB-style linear RAPID against the linear DCM environment and
reports the cumulative regret at geometric checkpoints together with the
theorem's bound.  Reproduction checks: (i) the raw regret is sublinear
(per-round regret shrinks), (ii) the gamma-scaled regret stays below the
theoretical bound, (iii) regret/sqrt(n) flattens.
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_series
from repro.theory import run_regret_experiment

from bench_utils import publish

CHECKPOINTS = (100, 250, 500, 1000, 2000)


def _run() -> str:
    result = run_regret_experiment(horizon=max(CHECKPOINTS), seed=0, exploration=0.5)
    raw = [float(result.raw_regret[n - 1]) for n in CHECKPOINTS]
    scaled = [float(result.cumulative_regret[n - 1]) for n in CHECKPOINTS]
    bound = [float(result.bound[n - 1]) for n in CHECKPOINTS]
    per_sqrt = [r / np.sqrt(n) for r, n in zip(raw, CHECKPOINTS)]
    text = format_series(
        {
            "raw regret": raw,
            "raw/sqrt(n)": per_sqrt,
            "scaled (Eq.12)": scaled,
            "Thm 5.1 bound": bound,
        },
        x_label="n",
        x_values=list(CHECKPOINTS),
        title=(
            f"Theorem 5.1 regret (gamma={result.gamma:.3f}, "
            f"s={result.exploration:.2f}, sublinearity="
            f"{result.sublinearity_ratio():.3f})"
        ),
        precision=2,
    )
    assert (result.cumulative_regret <= result.bound).all()
    assert result.sublinearity_ratio() < 1.0
    return text


def test_theorem51_regret(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("theorem51_regret", text)
    assert "Thm 5.1 bound" in text
