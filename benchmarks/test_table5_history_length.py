"""Table V — maximum per-topic behavior-sequence length D on App Store.

Sweeps D over {3, 5, 10}.  Expected shape (paper): D = 5 is the sweet spot;
too little history starves the personalized diversity estimator, too much
introduces noise.
"""

from __future__ import annotations

import dataclasses

from repro.eval import evaluate_reranker, format_table, make_reranker, prepare_bundle

from bench_utils import experiment_config, publish

LENGTHS = (3, 5, 10)
COLUMNS = ["click@5", "ndcg@5", "div@5", "rev@5", "click@10", "div@10", "rev@10"]


def _run() -> str:
    config = experiment_config("appstore", eval_mode="logged")
    bundle = prepare_bundle(config)
    table = {}
    for history_length in LENGTHS:
        train = dataclasses.replace(
            config.train, topic_history_length=history_length
        )
        bundle.config = dataclasses.replace(config, train=train)
        reranker = make_reranker("rapid-pro", bundle)
        reranker.fit(
            bundle.train_requests,
            bundle.world.catalog,
            bundle.world.population,
            bundle.histories,
        )
        result = evaluate_reranker(reranker, bundle)
        table[f"RAPID-{history_length}"] = result.metrics
    bundle.config = config
    return format_table(
        table, columns=COLUMNS, title="Table V (history length D, App Store)"
    )


def test_table5_history_length(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("table5_history_length", text)
    assert "RAPID-5" in text
