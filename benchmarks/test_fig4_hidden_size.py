"""Figure 4 — hyper-parameter study over the hidden size q_h.

Sweeps RAPID's hidden size over {8, 16, 32, 64} at lambda = 0.9 and reports
click@10 / div@10.  Expected shape (paper): utility generally improves with
capacity before overfitting sets in, while diversity drifts the other way —
the relevance-diversity tradeoff made visible through capacity.
"""

from __future__ import annotations

import dataclasses

from repro.eval import evaluate_reranker, format_series, make_reranker, prepare_bundle

from bench_utils import experiment_config, publish

HIDDEN_SIZES = (8, 16, 32, 64)


def _run() -> str:
    config = experiment_config("taobao", tradeoff=0.9)
    bundle = prepare_bundle(config)
    clicks, divs = [], []
    for hidden in HIDDEN_SIZES:
        bundle.config = dataclasses.replace(config, hidden=hidden)
        reranker = make_reranker("rapid-pro", bundle)
        reranker.fit(
            bundle.train_requests,
            bundle.world.catalog,
            bundle.world.population,
            bundle.histories,
        )
        result = evaluate_reranker(reranker, bundle)
        clicks.append(result["click@10"])
        divs.append(result["div@10"])
    bundle.config = config
    return format_series(
        {"click@10": clicks, "div@10": divs},
        x_label="hidden",
        x_values=list(HIDDEN_SIZES),
        title="Figure 4 (hidden size sweep, Taobao, lambda=0.9)",
    )


def test_fig4_hidden_size(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("fig4_hidden_size", text)
    assert "click@10" in text
