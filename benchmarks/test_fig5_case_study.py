"""Figure 5 — case study: personalized diversification per user type.

Selects the most diverse-taste and the most focused-taste users from the
MovieLens-like test set and contrasts (i) the genre distribution of their
behavior history with (ii) the genre distribution of RAPID's top-5
recommendations and (iii) the learned preference distribution theta_hat.

Expected shape (paper): the diverse user's re-ranked list spans many genres
while the focused user's list concentrates on her dominant genre — RAPID
diversifies *per user*, not uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.data import build_batch
from repro.eval import format_table, make_reranker, prepare_bundle
from repro.metrics import topic_coverage

from bench_utils import experiment_config, publish


def _genre_distribution(coverage_rows: np.ndarray) -> np.ndarray:
    mass = coverage_rows.sum(axis=0)
    total = mass.sum()
    return mass / total if total > 0 else mass


def _run() -> str:
    config = experiment_config("movielens", tradeoff=0.5)
    bundle = prepare_bundle(config)
    world = bundle.world
    rapid = make_reranker("rapid-pro", bundle)
    rapid.fit(
        bundle.train_requests, world.catalog, world.population, bundle.histories
    )

    batch = build_batch(
        bundle.test_requests, world.catalog, world.population, bundle.histories
    )
    perm = rapid.rerank(batch)
    theta = rapid.model.preference_distribution(batch)

    # Select users by the *observable* genre entropy of their history
    # (matching the paper's case-study selection of a multi-interest and a
    # homogeneous user).
    entropies = []
    for request in bundle.test_requests:
        dist = _genre_distribution(
            world.catalog.coverage[bundle.histories[request.user_id]]
        )
        entropies.append(float(-(dist * np.log(dist + 1e-12)).sum()))
    entropies = np.asarray(entropies)
    diverse_row = int(np.argmax(entropies))
    focused_row = int(np.argmin(entropies))

    table: dict[str, dict[str, float]] = {}
    summary: dict[str, dict[str, float]] = {}
    for label, row in (("diverse-user", diverse_row), ("focused-user", focused_row)):
        request = bundle.test_requests[row]
        history = bundle.histories[request.user_id]
        hist_dist = _genre_distribution(world.catalog.coverage[history])
        top_items = request.items[perm[row][:5]]
        rec_cov = world.catalog.coverage[top_items]
        rec_dist = _genre_distribution(rec_cov)
        for name, dist in (
            (f"{label} history", hist_dist),
            (f"{label} rapid-top5", rec_dist),
            (f"{label} theta_hat", theta[row]),
        ):
            table[name] = {
                f"genre{j}": float(dist[j]) for j in range(world.catalog.num_topics)
            }
        summary[label] = {
            "history-entropy": float(
                -(hist_dist * np.log(hist_dist + 1e-12)).sum()
            ),
            "top5-covered-genres": float(topic_coverage(rec_cov).sum()),
        }

    genre_cols = [f"genre{j}" for j in range(world.catalog.num_topics)]
    parts = [
        format_table(table, columns=genre_cols, title="Figure 5 (genre distributions)", precision=3),
        format_table(
            summary,
            columns=["history-entropy", "top5-covered-genres"],
            title="Figure 5 summary",
            precision=3,
        ),
    ]
    return "\n\n".join(parts)


def test_fig5_case_study(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("fig5_case_study", text)
    assert "diverse-user history" in text
