"""Table II — overall performance on Taobao and MovieLens.

Reproduces, per DCM tradeoff lambda in {0.5, 0.9, 1.0}, the comparison of
Init, the four relevance-oriented re-rankers, the four diversity-aware
re-rankers, the two personalized-diversity baselines, and RAPID-det/pro on
click@k / ndcg@k / div@k / satis@k.

Expected shape (paper): all neural re-rankers beat Init on utility; DPP has
the highest div@k at a utility cost; RAPID attains the best utility with
diversity above the relevance-only group; RAPID's div edge over PRM shrinks
as lambda -> 1.
"""

from __future__ import annotations

import pytest

from repro.eval import DEFAULT_MODELS, format_table, prepare_bundle, run_experiment

from bench_utils import experiment_config, publish

UTILITY_COLUMNS = [
    "click@5",
    "ndcg@5",
    "div@5",
    "satis@5",
    "click@10",
    "ndcg@10",
    "div@10",
    "satis@10",
]


def _run_cell(dataset: str, tradeoff: float) -> str:
    config = experiment_config(dataset, tradeoff=tradeoff)
    bundle = prepare_bundle(config)
    results = run_experiment(config, DEFAULT_MODELS, bundle=bundle)
    table = {name: result.metrics for name, result in results.items()}
    return format_table(
        table,
        columns=UTILITY_COLUMNS,
        title=f"Table II ({dataset}, lambda={tradeoff})",
    )


@pytest.mark.parametrize("tradeoff", [0.5, 0.9, 1.0])
@pytest.mark.parametrize("dataset", ["taobao", "movielens"])
def test_table2(benchmark, dataset, tradeoff):
    text = benchmark.pedantic(
        _run_cell, args=(dataset, tradeoff), rounds=1, iterations=1
    )
    publish(f"table2_{dataset}_lambda{tradeoff}", text)
    assert "rapid-pro" in text
