"""Ablation bench — sort-by-score vs greedy sequential inference.

The paper's deep model sorts by a single forward pass (Sec. III-D); its
theory section constructs lists greedily (Sec. V-A).  The `greedy`
inference extension applies the theory's constructor to the trained deep
model: each position re-computes every remaining candidate's personalized
diversity gain against the already-chosen prefix.

Expected shape: greedy inference matches or improves div@k (it re-scores
novelty against the *actual* chosen prefix rather than the initial-list
prefix) at equal or slightly better utility, at ~L times the head cost.
"""

from __future__ import annotations

import time

from repro.eval import evaluate_reranker, format_table, make_reranker, prepare_bundle

from bench_utils import experiment_config, publish


def _run() -> str:
    config = experiment_config("taobao", tradeoff=0.5)
    bundle = prepare_bundle(config)
    table = {}
    for name in ("rapid-pro", "rapid-pro-greedy"):
        reranker = make_reranker(name, bundle)
        reranker.fit(
            bundle.train_requests,
            bundle.world.catalog,
            bundle.world.population,
            bundle.histories,
        )
        start = time.perf_counter()
        result = evaluate_reranker(reranker, bundle)
        elapsed = time.perf_counter() - start
        row = dict(result.metrics)
        row["eval (s)"] = elapsed
        table[name] = row
    return format_table(
        table,
        columns=["click@5", "div@5", "click@10", "div@10", "eval (s)"],
        title="Ablation: sort vs greedy sequential inference (Taobao, lambda=0.5)",
    )


def test_ablation_inference_mode(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("ablation_inference_mode", text)
    assert "rapid-pro-greedy" in text
