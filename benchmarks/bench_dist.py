"""Benchmark: data-parallel training throughput and single-worker overhead.

Two gates for the ``repro.dist`` trainer (PR 10):

- **scale-out** — epoch throughput at 4 workers must be >= 2.5x the
  single-worker throughput.  This box has one usable core, so running a
  real 4-process fleet would just timeslice; instead the bench *measures*
  the real per-step components single-threaded (worker backward+grad
  collection, parent reduce+apply) and models the 4-core critical path:
  concurrent equal-cost backwards collapse to one, the parent's reduce
  stays serial.  The speedup comes from step-count arithmetic — W workers
  cover an epoch in ``ceil(N/W/B)`` lockstep steps instead of
  ``ceil(N/B)`` — degraded by the (measured) serial reduce.
- **overhead** — the ``inline`` backend at ``world_size=1`` (one model,
  identity average, same ``apply_step``) must stay within 5% of plain
  ``train_rapid`` wall clock per epoch, measured for real with the
  interleaved min-of-k protocol from ``bench_utils``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_dist.py

Results land in ``BENCH_pr10.json`` and the shared trajectory via
:func:`publish_benchmark` (which also runs the regression sentinel).
"""

from __future__ import annotations

import os
import time
from math import ceil

import numpy as np
from bench_utils import interleaved_min_of_k, publish_benchmark

from repro import nn
from repro.core import RapidConfig, TrainConfig, make_rapid_variant
from repro.core.trainer import apply_step, backward_batch, train_rapid
from repro.data import RankingRequest, make_taobao_world
from repro.dist import DistTrainConfig, train_dist
from repro.dist.train import (
    _collect_grads,
    _rank_batches,
    _step_rng,
    _steps_per_epoch,
    average_contributions,
    shard_requests,
)

BENCH_TAG = "pr10"
MAX_SINGLE_OVERHEAD = 0.05  # inline W=1 vs plain train_rapid
MIN_SPEEDUP_W4 = 2.5  # modeled 4-core epoch throughput vs 1 worker
NUM_REQUESTS = 256
LIST_LENGTH = 10
BATCH_SIZE = 32
EPOCHS = 2
REPEATS = 5
COMPONENT_ROUNDS = 30


def _setup():
    world = make_taobao_world("tiny", seed=0)
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = []
    for _ in range(NUM_REQUESTS):
        user = int(rng.integers(world.config.num_users))
        items = rng.choice(
            world.config.num_items, size=LIST_LENGTH, replace=False
        )
        clicks = (rng.random(LIST_LENGTH) < 0.3).astype(float)
        requests.append(
            RankingRequest(user, items, rng.normal(size=LIST_LENGTH), clicks=clicks)
        )
    rapid_config = RapidConfig(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=8,
        seed=0,
    )
    return world, histories, requests, rapid_config


def _train_config() -> TrainConfig:
    return TrainConfig(epochs=EPOCHS, batch_size=BATCH_SIZE, seed=0)


# ----------------------------------------------------------------------
# Real wall clock: inline W=1 vs plain train_rapid
# ----------------------------------------------------------------------
def _plain_epoch_seconds(setup) -> float:
    world, histories, requests, rapid_config = setup
    model = make_rapid_variant("rapid-det", rapid_config)
    start = time.perf_counter()
    train_rapid(
        model,
        requests,
        world.catalog,
        world.population,
        histories,
        config=_train_config(),
    )
    return (time.perf_counter() - start) / EPOCHS


def _dist1_epoch_seconds(setup) -> float:
    world, histories, requests, rapid_config = setup
    model = make_rapid_variant("rapid-det", rapid_config)
    start = time.perf_counter()
    train_dist(
        model,
        requests,
        world.catalog,
        world.population,
        histories,
        config=_train_config(),
        dist=DistTrainConfig(world_size=1, backend="inline"),
    )
    return (time.perf_counter() - start) / EPOCHS


# ----------------------------------------------------------------------
# Modeled critical path: measured components, 4-core schedule
# ----------------------------------------------------------------------
def _measure_components(setup, world_size: int) -> dict[str, float]:
    """Measured per-step costs for one fleet shape, single-threaded.

    ``t_worker``: one worker's step body (backward + grad collection) on
    its own shard's batch — identical work at any ``world_size``, since
    every worker always consumes ``BATCH_SIZE`` requests per step.
    ``t_reduce``: the parent's serial share — count-weighted average of
    ``world_size`` contributions plus the clipped Adam apply.
    """
    world, histories, requests, rapid_config = setup
    config = _train_config()
    shards = shard_requests(requests, world_size)
    steps = _steps_per_epoch(shards, config.batch_size)
    model = make_rapid_variant("rapid-det", rapid_config)
    optimizer = nn.Adam(model.parameters(), lr=config.lr)
    model.train()
    batches = _rank_batches(
        shards[0], world.catalog, world.population, histories, config, 0, 0
    )

    def one_backward() -> list[np.ndarray]:
        backward_batch(
            model, optimizer, batches[0], _step_rng(config.seed, 0, 0, 0)
        )
        return _collect_grads(model)

    grads = one_backward()  # warm-up, and a real contribution template
    contribs = [
        (rank, [g.copy() for g in grads], 0.5, config.batch_size)
        for rank in range(world_size)
    ]

    t_worker = float("inf")
    for _ in range(COMPONENT_ROUNDS):
        start = time.perf_counter()
        one_backward()
        t_worker = min(t_worker, time.perf_counter() - start)

    t_reduce = float("inf")
    for _ in range(COMPONENT_ROUNDS):
        start = time.perf_counter()
        averaged, _ = average_contributions(contribs)
        apply_step(model, optimizer, config.grad_clip, grads=averaged)
        t_reduce = min(t_reduce, time.perf_counter() - start)

    return {
        "steps_per_epoch": steps,
        "t_worker_s": t_worker,
        "t_reduce_s": t_reduce,
        # critical path of one lockstep step on a machine with >= W cores:
        # all backwards overlap (equal cost), the reduce is serial
        "epoch_s": steps * (t_worker + t_reduce),
    }


def measure() -> dict:
    setup = _setup()
    # steady-state allocator pools / first-call module loads off the clock
    _plain_epoch_seconds(setup)
    _dist1_epoch_seconds(setup)

    best = interleaved_min_of_k(
        [
            ("plain", lambda: _plain_epoch_seconds(setup)),
            ("dist1", lambda: _dist1_epoch_seconds(setup)),
        ],
        repeats=REPEATS,
    )
    overhead = best["dist1"] / best["plain"] - 1.0

    w1 = _measure_components(setup, 1)
    w4 = _measure_components(setup, 4)
    speedup = w1["epoch_s"] / w4["epoch_s"]

    return {
        "mode": "modeled(1-core-critical-path)",
        "cores": os.cpu_count(),
        "num_requests": NUM_REQUESTS,
        "batch_size": BATCH_SIZE,
        "plain_epoch_s": best["plain"],
        "dist1_epoch_s": best["dist1"],
        "single_worker_overhead_fraction": overhead,
        "w1_steps_per_epoch": w1["steps_per_epoch"],
        "w4_steps_per_epoch": w4["steps_per_epoch"],
        "w1_step_worker_ms": 1e3 * w1["t_worker_s"],
        "w1_step_reduce_ms": 1e3 * w1["t_reduce_s"],
        "w4_step_reduce_ms": 1e3 * w4["t_reduce_s"],
        "w1_modeled_epoch_s": w1["epoch_s"],
        "w4_modeled_epoch_s": w4["epoch_s"],
        "modeled_speedup_w4": speedup,
    }


def main() -> None:
    result = measure()
    print(
        f"plain train_rapid:     {result['plain_epoch_s']:.3f} s/epoch\n"
        f"train_dist W=1 inline: {result['dist1_epoch_s']:.3f} s/epoch "
        f"({100 * result['single_worker_overhead_fraction']:+.2f}%)\n"
        f"modeled W=1 epoch:     {result['w1_modeled_epoch_s']:.3f} s "
        f"({result['w1_steps_per_epoch']} steps)\n"
        f"modeled W=4 epoch:     {result['w4_modeled_epoch_s']:.3f} s "
        f"({result['w4_steps_per_epoch']} steps, reduce "
        f"{result['w4_step_reduce_ms']:.2f} ms/step)\n"
        f"modeled speedup @4:    {result['modeled_speedup_w4']:.2f}x"
    )
    path = publish_benchmark(BENCH_TAG, result)
    print(f"published {path}")
    assert result["single_worker_overhead_fraction"] < MAX_SINGLE_OVERHEAD, (
        f"train_dist W=1 overhead "
        f"{result['single_worker_overhead_fraction']:.2%} exceeds the "
        f"{MAX_SINGLE_OVERHEAD:.0%} budget vs plain train_rapid"
    )
    assert result["modeled_speedup_w4"] >= MIN_SPEEDUP_W4, (
        f"modeled 4-worker speedup {result['modeled_speedup_w4']:.2f}x "
        f"is below the {MIN_SPEEDUP_W4:.1f}x gate"
    )
    print(
        f"OK (overhead < {MAX_SINGLE_OVERHEAD:.0%}, "
        f"speedup >= {MIN_SPEEDUP_W4:.1f}x)"
    )


if __name__ == "__main__":
    main()
