"""Extension bench — Seq2Slate pointer network vs the paper's zoo.

Seq2Slate (Bello et al. 2019) is cited in the paper's related work but not
evaluated; this bench slots it into the Table II protocol on Taobao at
lambda = 0.5.  Expected shape: strong click@10 (sequential generation
optimizes whole-list placement), weaker top-5 precision than the scoring
models, no personalized diversity.
"""

from __future__ import annotations

from repro.eval import format_table, prepare_bundle, run_experiment

from bench_utils import experiment_config, publish

MODELS = ("init", "prm", "seq2slate", "rapid-pro")


def _run() -> str:
    config = experiment_config("taobao", tradeoff=0.5)
    bundle = prepare_bundle(config)
    results = run_experiment(config, MODELS, bundle=bundle)
    table = {name: result.metrics for name, result in results.items()}
    return format_table(
        table,
        columns=["click@5", "ndcg@5", "div@5", "click@10", "div@10"],
        title="Extension: Seq2Slate vs PRM vs RAPID (Taobao, lambda=0.5)",
    )


def test_extension_seq2slate(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("extension_seq2slate", text)
    assert "seq2slate" in text
