"""Microbenchmark: disabled-path cost of the resilience layer.

Fault points (``repro.resilience.chaos.faultpoint``) are compiled into the
trainer, data I/O, and every ``Reranker.rerank``; the contract is that a
*disarmed* process pays only a module-global load and a ``None`` check per
marker.  This bench proves that with wall clocks, on both instrumented hot
paths:

- **training residue** — per-batch train cost before any chaos use vs
  after an arm/disarm cycle (a leaked plan, stale op wrapper, or lingering
  closure would show up here).  Gated under ``MAX_DISABLED_OVERHEAD`` (5%).
- **serving residue** — per-request ``rerank`` latency, same protocol,
  same gate.
- **wrapper overhead** — per-request cost of serving through a healthy
  :class:`~repro.resilience.degrade.ResilientReranker` (deadline check +
  output validation + breaker bookkeeping) vs calling the primary
  directly.  Gated under ``MAX_WRAPPER_OVERHEAD`` (5%).

All gates compare *minimum* observed latencies from interleaved rounds:
the min isolates the cost of the code path itself, since scheduler and
load spikes only ever make a sample slower.

Run the timing assertions directly::

    PYTHONPATH=src python benchmarks/bench_resilience_overhead.py

Results land in ``BENCH_resilience_overhead.json`` and the shared
``benchmarks/results/trajectory.jsonl`` via :func:`publish_benchmark`.
"""

from __future__ import annotations

import time

from bench_utils import interleaved_min_of_k, publish_benchmark

from repro.core.rapid import RapidConfig, make_rapid_variant
from repro.core.trainer import TrainConfig, train_rapid
from repro.data import build_batch
from repro.eval import ExperimentConfig, prepare_bundle
from repro.rerank import MMRReranker
from repro.resilience import FaultSpec, chaos
from repro.resilience.degrade import CircuitBreaker, ResilientReranker
from repro.utils.timer import Timings

BENCH_TAG = "resilience_overhead"
MAX_DISABLED_OVERHEAD = 0.05
MAX_WRAPPER_OVERHEAD = 0.05
RERANK_ROUNDS = 300
TRAIN_RUNS = 4
REPEATS = 5


def _bundle():
    return prepare_bundle(
        ExperimentConfig(
            dataset="taobao",
            scale="tiny",
            list_length=8,
            num_train_requests=48,
            num_test_requests=8,
            ranker_interactions=300,
            hidden=4,
            train=TrainConfig(epochs=2, batch_size=16),
            seed=0,
        )
    )


def _cycle_chaos() -> None:
    """Arm and disarm a plan that never matches a real site."""
    with chaos(FaultSpec("bench.no-such-site"), FaultSpec("op.relu", kind="nan")):
        pass


def best_batch_seconds(bundle, runs: int = TRAIN_RUNS) -> float:
    """Fastest per-batch wall time across ``runs`` small real training runs."""
    rapid_config = RapidConfig(
        user_dim=bundle.world.population.feature_dim,
        item_dim=bundle.world.catalog.feature_dim,
        num_topics=bundle.world.catalog.num_topics,
        hidden=4,
        seed=0,
    )
    best = float("inf")
    for _ in range(runs):
        timings = Timings()
        train_rapid(
            make_rapid_variant("rapid-det", rapid_config),
            bundle.train_requests,
            bundle.world.catalog,
            bundle.world.population,
            bundle.histories,
            config=bundle.config.train,
            timings=timings,
        )
        best = min(best, min(timings.samples))
    return best


def best_rerank_seconds(reranker, batch, rounds: int = RERANK_ROUNDS) -> float:
    """Fastest single-call latency of ``reranker.rerank`` over ``rounds``."""
    reranker.rerank(batch)  # warm-up outside the timed region
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        reranker.rerank(batch)
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> dict[str, float]:
    """Overhead breakdown for the train and serving hot paths.

    The compared conditions are measured *interleaved* (baseline, cycle,
    disarmed, wrapped, repeat) so machine-load drift lands on both sides of
    each ratio, and every quantity is the minimum across all repeats.
    """
    bundle = _bundle()
    batch = build_batch(
        bundle.test_requests,
        bundle.world.catalog,
        bundle.world.population,
        bundle.histories,
    )
    primary = MMRReranker()
    resilient = ResilientReranker(
        MMRReranker(),
        fallbacks=[],
        deadline_ms=None,
        breaker=CircuitBreaker(name="bench"),
    )

    # Steady-state the process (allocator pools, numpy caches, first-call
    # module loads) before anything is timed, so neither side of a ratio
    # eats one-time costs.
    best_batch_seconds(bundle, runs=1)
    best_rerank_seconds(primary, batch, rounds=20)
    best_rerank_seconds(resilient, batch, rounds=20)

    # Full arm/disarm cycle (including a nan spec, so the op-dispatch
    # surface is wrapped and unwrapped) between the baseline and disarmed
    # samples: any residue is exactly what the gates exist for.  The
    # interleaved min-of-k protocol lives in ``bench_utils``.
    best = interleaved_min_of_k(
        [
            ("train_baseline", lambda: best_batch_seconds(bundle)),
            ("rerank_baseline", lambda: best_rerank_seconds(primary, batch)),
            (None, _cycle_chaos),
            ("train_disarmed", lambda: best_batch_seconds(bundle)),
            ("rerank_disarmed", lambda: best_rerank_seconds(primary, batch)),
            ("rerank_wrapped", lambda: best_rerank_seconds(resilient, batch)),
        ],
        repeats=REPEATS,
    )

    return {
        "train_baseline_ms_per_batch": 1e3 * best["train_baseline"],
        "train_disarmed_ms_per_batch": 1e3 * best["train_disarmed"],
        "train_disabled_overhead_fraction": best["train_disarmed"]
        / best["train_baseline"]
        - 1.0,
        "rerank_baseline_ms_per_request": 1e3 * best["rerank_baseline"],
        "rerank_disarmed_ms_per_request": 1e3 * best["rerank_disarmed"],
        "rerank_disabled_overhead_fraction": best["rerank_disarmed"]
        / best["rerank_baseline"]
        - 1.0,
        "rerank_wrapped_ms_per_request": 1e3 * best["rerank_wrapped"],
        "wrapper_overhead_fraction": best["rerank_wrapped"]
        / best["rerank_disarmed"]
        - 1.0,
    }


def main() -> None:
    result = measure()
    print(
        f"train baseline:      {result['train_baseline_ms_per_batch']:.2f} ms/batch\n"
        f"train after cycle:   {result['train_disarmed_ms_per_batch']:.2f} ms/batch "
        f"({100 * result['train_disabled_overhead_fraction']:+.2f}%)\n"
        f"rerank baseline:     {result['rerank_baseline_ms_per_request']:.3f} ms/req\n"
        f"rerank after cycle:  {result['rerank_disarmed_ms_per_request']:.3f} ms/req "
        f"({100 * result['rerank_disabled_overhead_fraction']:+.2f}%)\n"
        f"resilient wrapper:   {result['rerank_wrapped_ms_per_request']:.3f} ms/req "
        f"({100 * result['wrapper_overhead_fraction']:+.2f}%)"
    )
    path = publish_benchmark(BENCH_TAG, result)
    print(f"published {path}")
    assert result["train_disabled_overhead_fraction"] < MAX_DISABLED_OVERHEAD, (
        f"disarmed chaos residue on training "
        f"{result['train_disabled_overhead_fraction']:.2%} exceeds the "
        f"{MAX_DISABLED_OVERHEAD:.0%} budget"
    )
    assert result["rerank_disabled_overhead_fraction"] < MAX_DISABLED_OVERHEAD, (
        f"disarmed chaos residue on rerank "
        f"{result['rerank_disabled_overhead_fraction']:.2%} exceeds the "
        f"{MAX_DISABLED_OVERHEAD:.0%} budget"
    )
    assert result["wrapper_overhead_fraction"] < MAX_WRAPPER_OVERHEAD, (
        f"ResilientReranker wrapper overhead "
        f"{result['wrapper_overhead_fraction']:.2%} exceeds the "
        f"{MAX_WRAPPER_OVERHEAD:.0%} budget"
    )
    print(f"OK (all overheads < {MAX_DISABLED_OVERHEAD:.0%} budget)")


if __name__ == "__main__":
    main()
