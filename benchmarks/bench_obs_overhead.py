"""Microbenchmark: obs v2 cost with the serving-grade telemetry *disabled*.

The observability layer is opt-in everywhere: windowed metrics
(``repro.obs.windows``), the SLO monitor, and the sampling profiler all
cost nothing until enabled — the hot paths pay one module-global branch
per call site.  This bench proves that contract with wall clocks, on both
instrumented hot paths:

- **training residue** — per-batch train cost before any obs-v2 use vs
  after a full enable/disable cycle (windowed metrics + SLO monitor +
  sampling profiler + op profiler).  Gated under
  ``MAX_DISABLED_OVERHEAD`` (5%).
- **serving residue** — per-request ``rerank`` latency, same cycle, same
  gate.
- **inference-path residue** — per-request latency of a neural reranker
  on the tape-free float32 path (``repro.nn.inference``), same cycle,
  same gate: the op profiler installs ``inference._PROFILE_HOOK`` and
  the disabled cost of that hook point is one module-global ``None``
  check per kernel call.
- **enabled cost** — the same request path with windowed metrics *on*,
  reported (not gated): the price of recent percentiles, for DESIGN.md's
  "when to enable" guidance.
- **micro cost** — nanoseconds per disabled ``windows.observe`` call,
  reported for the record.

All gates compare *minimum* observed latencies from interleaved rounds
(:func:`bench_utils.interleaved_min_of_k`): the min isolates the code
path's own cost, and interleaving keeps machine drift off the ratios.

Run the timing assertions directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

Results land in ``BENCH_obs_v2.json`` and the shared
``benchmarks/results/trajectory.jsonl`` via :func:`publish_benchmark`,
which also runs the regression sentinel on the new entry.
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import interleaved_min_of_k, publish_benchmark

from repro.core.rapid import RapidConfig, make_rapid_variant
from repro.core.trainer import RapidReranker, TrainConfig, train_rapid
from repro.data import build_batch
from repro.eval import ExperimentConfig, prepare_bundle
from repro.nn import inference
from repro.obs import windows
from repro.obs.autograd import disable_op_profiler, enable_op_profiler
from repro.obs.profiler import start_sampling, stop_sampling
from repro.obs.slo import serving_slo
from repro.rerank import MMRReranker
from repro.utils.timer import Timings

BENCH_TAG = "obs_v2"
MAX_DISABLED_OVERHEAD = 0.05
RERANK_ROUNDS = 300
TRAIN_RUNS = 4
REPEATS = 5


def _bundle():
    return prepare_bundle(
        ExperimentConfig(
            dataset="taobao",
            scale="tiny",
            list_length=8,
            num_train_requests=48,
            num_test_requests=8,
            ranker_interactions=300,
            hidden=4,
            train=TrainConfig(epochs=2, batch_size=16),
            seed=0,
        )
    )


def _cycle_obs() -> None:
    """Enable and disable every opt-in obs-v2 surface.

    Windowed metrics, an SLO monitor taking records, the sampling
    profiler, and the op profiler (which installs
    ``inference._PROFILE_HOOK`` on the tape-free kernels) all turn on and
    back off; any residue left behind (a stale flag, a lingering sampler
    thread, leaked windowed series feeding, a hook not uninstalled) is
    exactly what the gates exist for.
    """
    windows.enable_windowed()
    monitor = serving_slo()
    monitor.record(latency_ms=1.0)
    monitor.evaluate()
    profiler = start_sampling(hz=50)
    profiler.sample_once()
    stop_sampling()
    enable_op_profiler()
    inference.linear_nd(
        np.ones((2, 3), dtype=np.float32), np.ones((3, 2), dtype=np.float32), None
    )
    disable_op_profiler()
    windows.disable_windowed()
    assert inference._PROFILE_HOOK is None


def disabled_call_seconds(iterations: int = 200_000) -> float:
    """Seconds per disabled ``windows.observe`` + ``windows.mark`` pair.

    This is the *entire* per-call-site cost the instrumented hot paths pay
    when windowed metrics are off.
    """
    assert not windows.windowed_enabled()
    start = time.perf_counter()
    for _ in range(iterations):
        windows.observe("bench.noop_ms", 1.0)
        windows.mark("bench.noop")
    return (time.perf_counter() - start) / iterations


def best_batch_seconds(bundle, runs: int = TRAIN_RUNS) -> float:
    """Fastest per-batch wall time across ``runs`` small real training runs."""
    rapid_config = RapidConfig(
        user_dim=bundle.world.population.feature_dim,
        item_dim=bundle.world.catalog.feature_dim,
        num_topics=bundle.world.catalog.num_topics,
        hidden=4,
        seed=0,
    )
    best = float("inf")
    for _ in range(runs):
        timings = Timings()
        train_rapid(
            make_rapid_variant("rapid-det", rapid_config),
            bundle.train_requests,
            bundle.world.catalog,
            bundle.world.population,
            bundle.histories,
            config=bundle.config.train,
            timings=timings,
        )
        best = min(best, min(timings.samples))
    return best


def best_rerank_seconds(reranker, batch, rounds: int = RERANK_ROUNDS) -> float:
    """Fastest single-call latency of ``reranker.rerank`` over ``rounds``."""
    reranker.rerank(batch)  # warm-up outside the timed region
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        reranker.rerank(batch)
        best = min(best, time.perf_counter() - start)
    return best


def measure() -> dict[str, float]:
    """Overhead breakdown for the train and serving hot paths."""
    bundle = _bundle()
    batch = build_batch(
        bundle.test_requests,
        bundle.world.catalog,
        bundle.world.population,
        bundle.histories,
    )
    reranker = MMRReranker()
    neural = RapidReranker(
        RapidConfig(
            user_dim=bundle.world.population.feature_dim,
            item_dim=bundle.world.catalog.feature_dim,
            num_topics=bundle.world.catalog.num_topics,
            hidden=4,
            seed=0,
        ),
        variant="rapid-pro",
    )

    def best_infer_seconds() -> float:
        with inference.use_infer(True):
            return best_rerank_seconds(neural, batch)

    # Steady-state the process (allocator pools, numpy caches, first-call
    # module loads) before anything is timed.
    best_batch_seconds(bundle, runs=1)
    best_rerank_seconds(reranker, batch, rounds=20)
    best_infer_seconds()
    _cycle_obs()

    def rerank_windowed() -> float:
        windows.enable_windowed()
        try:
            return best_rerank_seconds(reranker, batch)
        finally:
            windows.disable_windowed()

    best = interleaved_min_of_k(
        [
            ("train_baseline", lambda: best_batch_seconds(bundle)),
            ("rerank_baseline", lambda: best_rerank_seconds(reranker, batch)),
            ("infer_baseline", best_infer_seconds),
            (None, _cycle_obs),
            ("train_disabled", lambda: best_batch_seconds(bundle)),
            ("rerank_disabled", lambda: best_rerank_seconds(reranker, batch)),
            ("infer_disabled", best_infer_seconds),
            ("rerank_windowed", rerank_windowed),
        ],
        repeats=REPEATS,
    )
    micro = disabled_call_seconds()

    return {
        "train_baseline_ms_per_batch": 1e3 * best["train_baseline"],
        "train_disabled_ms_per_batch": 1e3 * best["train_disabled"],
        "train_disabled_overhead_fraction": best["train_disabled"]
        / best["train_baseline"]
        - 1.0,
        "rerank_baseline_ms_per_request": 1e3 * best["rerank_baseline"],
        "rerank_disabled_ms_per_request": 1e3 * best["rerank_disabled"],
        "rerank_disabled_overhead_fraction": best["rerank_disabled"]
        / best["rerank_baseline"]
        - 1.0,
        "infer_baseline_ms_per_request": 1e3 * best["infer_baseline"],
        "infer_disabled_ms_per_request": 1e3 * best["infer_disabled"],
        "infer_disabled_overhead_fraction": best["infer_disabled"]
        / best["infer_baseline"]
        - 1.0,
        "rerank_windowed_ms_per_request": 1e3 * best["rerank_windowed"],
        "windowed_enabled_overhead_fraction": best["rerank_windowed"]
        / best["rerank_disabled"]
        - 1.0,
        "disabled_call_us": 1e6 * micro,
    }


def main() -> None:
    result = measure()
    print(
        f"train baseline:      {result['train_baseline_ms_per_batch']:.2f} ms/batch\n"
        f"train after cycle:   {result['train_disabled_ms_per_batch']:.2f} ms/batch "
        f"({100 * result['train_disabled_overhead_fraction']:+.2f}%)\n"
        f"rerank baseline:     {result['rerank_baseline_ms_per_request']:.3f} ms/req\n"
        f"rerank after cycle:  {result['rerank_disabled_ms_per_request']:.3f} ms/req "
        f"({100 * result['rerank_disabled_overhead_fraction']:+.2f}%)\n"
        f"infer baseline:      {result['infer_baseline_ms_per_request']:.3f} ms/req\n"
        f"infer after cycle:   {result['infer_disabled_ms_per_request']:.3f} ms/req "
        f"({100 * result['infer_disabled_overhead_fraction']:+.2f}%)\n"
        f"rerank windowed on:  {result['rerank_windowed_ms_per_request']:.3f} ms/req "
        f"({100 * result['windowed_enabled_overhead_fraction']:+.2f}%)\n"
        f"disabled call pair:  {result['disabled_call_us']:.3f} us"
    )
    path = publish_benchmark(BENCH_TAG, result)
    print(f"published {path}")
    assert result["train_disabled_overhead_fraction"] < MAX_DISABLED_OVERHEAD, (
        f"disabled obs-v2 residue on training "
        f"{result['train_disabled_overhead_fraction']:.2%} exceeds the "
        f"{MAX_DISABLED_OVERHEAD:.0%} budget"
    )
    assert result["rerank_disabled_overhead_fraction"] < MAX_DISABLED_OVERHEAD, (
        f"disabled obs-v2 residue on rerank "
        f"{result['rerank_disabled_overhead_fraction']:.2%} exceeds the "
        f"{MAX_DISABLED_OVERHEAD:.0%} budget"
    )
    assert result["infer_disabled_overhead_fraction"] < MAX_DISABLED_OVERHEAD, (
        f"disabled obs-v2 residue on the inference path "
        f"{result['infer_disabled_overhead_fraction']:.2%} exceeds the "
        f"{MAX_DISABLED_OVERHEAD:.0%} budget"
    )
    print(f"OK (disabled residue < {MAX_DISABLED_OVERHEAD:.0%} budget)")


if __name__ == "__main__":
    main()
