"""Microbenchmark: obs instrumentation cost with observability *disabled*.

The trainer's hot loop always executes the disabled-path observability
calls — a ``train.batch`` span, one histogram observation, and a null-sink
``RunLogger.log`` per batch.  This bench measures that per-batch cost
directly, measures the real per-batch training cost on a small run, and
asserts the ratio stays under 5%.

Run the timing assertion directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

The pytest suite wires the same functions in as a structural smoke test
(``tests/test_obs_overhead_smoke.py``) without the timing assertion, so CI
stays immune to noisy-neighbor machines.
"""

from __future__ import annotations

import time

from repro.core.rapid import RapidConfig, make_rapid_variant
from repro.core.trainer import TrainConfig, train_rapid
from repro.eval import ExperimentConfig, prepare_bundle
from repro.obs import RunLogger, Tracer, trace
from repro.obs.metrics import MetricsRegistry
from repro.utils.timer import Timings

MAX_DISABLED_OVERHEAD = 0.05


def instrumentation_cost_per_batch(iterations: int = 20_000) -> float:
    """Seconds per batch spent in the disabled-path obs calls.

    Replays exactly what ``train_rapid`` does per batch when no sink is
    installed: open/close a nested span, observe one histogram sample, and
    call ``log`` on a null-sink logger.
    """
    registry = MetricsRegistry()
    hist = registry.histogram("bench.batch_ms")
    logger = RunLogger()  # null sink — the library default
    tracer = Tracer()
    start = time.perf_counter()
    with trace("train.run", tracer):
        with trace("train.epoch", tracer):
            for _ in range(iterations):
                with trace("train.batch", tracer):
                    pass
                hist.observe(1.0)
                logger.log("train.batch", epoch=0, batch=0, loss=0.0,
                           grad_norm=0.0, batch_ms=0.0)
    return (time.perf_counter() - start) / iterations


def mean_batch_seconds() -> float:
    """Mean per-batch wall time of a small real training run."""
    config = ExperimentConfig(
        dataset="taobao",
        scale="tiny",
        list_length=8,
        num_train_requests=48,
        num_test_requests=8,
        ranker_interactions=300,
        hidden=4,
        train=TrainConfig(epochs=2, batch_size=16),
        seed=0,
    )
    bundle = prepare_bundle(config)
    rapid_config = RapidConfig(
        user_dim=bundle.world.population.feature_dim,
        item_dim=bundle.world.catalog.feature_dim,
        num_topics=bundle.world.catalog.num_topics,
        hidden=4,
        seed=0,
    )
    timings = Timings()
    train_rapid(
        make_rapid_variant("rapid-det", rapid_config),
        bundle.train_requests,
        bundle.world.catalog,
        bundle.world.population,
        bundle.histories,
        config=config.train,
        timings=timings,
    )
    return timings.mean_ms / 1000.0


def measure(iterations: int = 20_000) -> dict[str, float]:
    """Return the overhead breakdown: per-call cost, batch cost, fraction."""
    obs_seconds = instrumentation_cost_per_batch(iterations)
    batch_seconds = mean_batch_seconds()
    return {
        "obs_us_per_batch": 1e6 * obs_seconds,
        "train_ms_per_batch": 1e3 * batch_seconds,
        "overhead_fraction": obs_seconds / batch_seconds,
    }


def main() -> None:
    result = measure()
    print(
        f"disabled-path obs cost: {result['obs_us_per_batch']:.2f} us/batch\n"
        f"training cost:          {result['train_ms_per_batch']:.2f} ms/batch\n"
        f"overhead:               {100 * result['overhead_fraction']:.3f}%"
    )
    assert result["overhead_fraction"] < MAX_DISABLED_OVERHEAD, (
        f"disabled instrumentation overhead {result['overhead_fraction']:.2%} "
        f"exceeds the {MAX_DISABLED_OVERHEAD:.0%} budget"
    )
    print(f"OK (< {MAX_DISABLED_OVERHEAD:.0%} budget)")


if __name__ == "__main__":
    main()
