"""Serving-latency benchmark for the tape-free inference path (PR 8).

Times ``Reranker.rerank`` for RAPID at serving shapes — one request with a
few hundred candidates, the regime the paper's efficiency section (Table 6)
targets — under three interleaved conditions:

- **infer** — the tape-free float32 path (``repro.nn.inference``), the
  serving default;
- **tape** — ``REPRO_NN_INFER=0``: float64 autograd forward under
  ``no_grad`` with the fused recurrent kernels (the pre-PR-8 serving path,
  and the bit-identity reference the golden slates pin);
- **tape_composed** — ``REPRO_NN_INFER=0`` + ``REPRO_NN_FUSED=0``: the
  fully composed per-op graph, for the cumulative trajectory across PRs.

All comparisons are interleaved min-of-k (:func:`bench_utils
.interleaved_min_of_k`): minima isolate the path's own cost, interleaving
puts machine drift on both sides of every ratio.

Acceptance (ISSUE PR 8): infer >= 5x faster than tape on the serving shape.

Run::

    PYTHONPATH=src python benchmarks/bench_inference.py

Results land in ``BENCH_pr8.json`` and the shared trajectory via
:func:`bench_utils.publish_benchmark` (which also runs the regression
sentinel on the new entry).
"""

from __future__ import annotations

import time

import numpy as np

from bench_utils import interleaved_min_of_k, publish_benchmark

from repro.core.rapid import RapidConfig
from repro.core.trainer import RapidReranker
from repro.data import RankingRequest, build_batch, make_taobao_world
from repro.nn import inference, kernels

BENCH_TAG = "pr8"
MIN_SPEEDUP = 5.0
REPEATS = 5
ROUNDS = 30  # rerank calls per inner min

# Serving shapes: (batch, candidates).  The single-request shape is the
# latency target; the batched shape shows throughput-style serving.
SHAPES = [(1, 200), (8, 50)]
HIDDEN = 16


def _serving_batch(world, histories, batch_size: int, list_length: int):
    rng = np.random.default_rng(42)
    requests = []
    for _ in range(batch_size):
        items = rng.choice(world.config.num_items, size=list_length, replace=False)
        requests.append(
            RankingRequest(
                int(rng.integers(world.config.num_users)),
                items,
                rng.normal(size=list_length),
            )
        )
    return build_batch(requests, world.catalog, world.population, histories)


def _best_rerank_seconds(reranker, batch, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        reranker.rerank(batch)
        best = min(best, time.perf_counter() - start)
    return best


def bench_shape(reranker, world, histories, batch_size: int, list_length: int) -> dict:
    batch = _serving_batch(world, histories, batch_size, list_length)

    # Warm both paths outside the timed region: the infer path casts (and
    # gate-reorders) weights on first use, the tape path warms numpy pools.
    with inference.use_infer(True):
        reranker.rerank(batch)
    with inference.use_infer(False):
        reranker.rerank(batch)
        with kernels.use_fused(False):
            reranker.rerank(batch)

    def timed(infer: bool, fused: bool = True):
        def step() -> float:
            with inference.use_infer(infer), kernels.use_fused(fused):
                return _best_rerank_seconds(reranker, batch)

        return step

    best = interleaved_min_of_k(
        [
            ("infer", timed(True)),
            ("tape", timed(False)),
            ("tape_composed", timed(False, fused=False)),
        ],
        repeats=REPEATS,
    )
    return {
        "batch_size": batch_size,
        "list_length": list_length,
        "infer_ms": 1e3 * best["infer"],
        "tape_ms": 1e3 * best["tape"],
        "tape_composed_ms": 1e3 * best["tape_composed"],
        "speedup_vs_tape": best["tape"] / best["infer"],
        "speedup_vs_composed": best["tape_composed"] / best["infer"],
    }


def measure() -> dict:
    world = make_taobao_world("small", seed=0)
    histories = world.sample_histories()
    reranker = RapidReranker(
        RapidConfig(
            user_dim=world.population.feature_dim,
            item_dim=world.catalog.feature_dim,
            num_topics=world.catalog.num_topics,
            hidden=HIDDEN,
            seed=0,
        ),
        variant="rapid-pro",
    )
    # Untrained weights: latency depends on shapes, not weight values.
    rows = [bench_shape(reranker, world, histories, b, l) for b, l in SHAPES]
    serving = rows[0]
    return {
        "benchmark": "tape_free_inference",
        "hidden": HIDDEN,
        "rounds": ROUNDS,
        "repeats": REPEATS,
        "shapes": rows,
        # Flat copies of the acceptance shape so the regression sentinel
        # (which compares top-level numeric keys) tracks them across PRs.
        "serving_infer_ms": serving["infer_ms"],
        "serving_tape_ms": serving["tape_ms"],
        "serving_speedup_vs_tape": serving["speedup_vs_tape"],
    }


def main() -> None:
    payload = measure()
    header = (
        f"{'shape':<10} {'infer ms':>10} {'tape ms':>10} "
        f"{'composed ms':>12} {'vs tape':>8} {'vs composed':>12}"
    )
    print(header)
    print("-" * len(header))
    for row in payload["shapes"]:
        shape = f"{row['batch_size']}x{row['list_length']}"
        print(
            f"{shape:<10} {row['infer_ms']:>10.3f} {row['tape_ms']:>10.3f} "
            f"{row['tape_composed_ms']:>12.3f} {row['speedup_vs_tape']:>7.2f}x "
            f"{row['speedup_vs_composed']:>11.2f}x"
        )
    path = publish_benchmark(BENCH_TAG, payload)
    print(f"\nwrote {path}")
    speedup = payload["serving_speedup_vs_tape"]
    assert speedup >= MIN_SPEEDUP, (
        f"inference-path speedup {speedup:.2f}x on the serving shape is "
        f"below the {MIN_SPEEDUP:.0f}x acceptance bar"
    )
    print(f"OK (inference path >= {MIN_SPEEDUP:.0f}x vs tape on serving shape)")


if __name__ == "__main__":
    main()
