"""Serving benchmark: the batched rerank service under Zipfian load (PR 9).

Drives :class:`repro.serve.RerankService` — RAPID behind a
:class:`~repro.resilience.degrade.ResilientReranker`, slate cache on,
windowed telemetry on — with the closed-loop Zipfian load generator
(millions of distinct virtual users, hot-head traffic) in real-time mode
and reports the serving SLIs:

- **p50/p95/p99 request latency** (client-observed, queueing included),
- **requests/sec** sustained by the closed loop,
- **cache hit rate** and the **batch-size** distribution.

Acceptance (ISSUE PR 9): p99 request latency <= 50 ms (the serving SLO
threshold the degrade layer defends) and >= 300 requests/sec under the
closed loop.  Both land in ``BENCH_pr9.json`` and the shared trajectory
via :func:`bench_utils.publish_benchmark`, so the regression sentinel
(``python -m repro.obs.regress``) tracks them across PRs (``p99_ms``:
lower is better; ``requests_per_sec``: higher is better).

Run::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import asyncio

from bench_utils import publish_benchmark

from repro.core import RapidConfig, RapidReranker
from repro.data import make_taobao_world
from repro.obs import get_registry
from repro.obs import windows as obs_windows
from repro.obs.slo import serving_slo
from repro.resilience.degrade import ResilientReranker
from repro.serve import (
    LoadGenerator,
    RerankService,
    ServingTenant,
    SlateCache,
    ZipfianWorkload,
)

BENCH_TAG = "pr9"
MAX_P99_MS = 50.0
MIN_RPS = 300.0

NUM_REQUESTS = 3000
CONCURRENCY = 32
NUM_VIRTUAL_USERS = 2_000_000
LIST_LENGTH = 50
MAX_BATCH = 16
MAX_WAIT_MS = 2.0
HIDDEN = 16


def build_service() -> "tuple[RerankService, ZipfianWorkload]":
    world = make_taobao_world("small", seed=0)
    histories = world.sample_histories()
    # Untrained weights: serving latency depends on shapes, not values.
    rapid = RapidReranker(
        RapidConfig(
            user_dim=world.population.feature_dim,
            item_dim=world.catalog.feature_dim,
            num_topics=world.catalog.num_topics,
            hidden=HIDDEN,
            seed=0,
        ),
        variant="rapid-pro",
    )
    resilient = ResilientReranker(
        rapid, deadline_ms=MAX_P99_MS, slo_monitor=serving_slo()
    )
    tenant = ServingTenant(
        resilient, world.catalog, world.population, list(histories)
    )
    service = RerankService(
        tenant,
        cache=SlateCache(capacity=8192, ttl_s=60.0),
        max_batch_size=MAX_BATCH,
        max_wait_ms=MAX_WAIT_MS,
        max_pending=4096,
    )
    workload = ZipfianWorkload(
        world.catalog,
        world.population,
        num_virtual_users=NUM_VIRTUAL_USERS,
        exponent=1.1,
        list_length=LIST_LENGTH,
        rescore_probability=0.05,
        seed=0,
    )
    return service, workload


async def run_load(service, workload) -> "tuple[dict, dict]":
    generator = LoadGenerator(service, workload, concurrency=CONCURRENCY)
    await service.start()
    try:
        # Warmup outside the timed window: weight casts, numpy pools, and
        # the cache's cold start all happen here.
        await generator.run(max(200, CONCURRENCY * 4))
        get_registry().reset()
        service.cache.clear()
        report = await generator.run(NUM_REQUESTS)
    finally:
        await service.stop()
    histogram = get_registry().histogram("serve.batch_size")
    batch_stats = {
        "mean_batch": round(histogram.mean, 2),
        "max_batch": MAX_BATCH,
        "forward_passes": histogram.count,
    }
    return report.summary(), batch_stats


def measure() -> dict:
    service, workload = build_service()
    obs_windows.enable_windowed()
    try:
        summary, batch_stats = asyncio.run(run_load(service, workload))
    finally:
        obs_windows.disable_windowed()
    return {
        "benchmark": "serving_closed_loop",
        "num_requests": NUM_REQUESTS,
        "concurrency": CONCURRENCY,
        "num_virtual_users": NUM_VIRTUAL_USERS,
        "list_length": LIST_LENGTH,
        "zipf_exponent": 1.1,
        "hidden": HIDDEN,
        # Tracked by the regression sentinel:
        "p50_ms": summary["p50_ms"],
        "p95_ms": summary["p95_ms"],
        "p99_ms": summary["p99_ms"],
        "requests_per_sec": summary["requests_per_sec"],
        # Context (sentinel-ignored fractions/counts):
        "cache_hit_rate": summary["cache_hit_rate"],
        "shed": summary["shed"],
        "sources": summary["sources"],
        **batch_stats,
    }


def main() -> None:
    payload = measure()
    print(
        f"{'requests':>9} {'req/s':>9} {'p50 ms':>8} {'p95 ms':>8} "
        f"{'p99 ms':>8} {'hit rate':>9} {'mean batch':>11}"
    )
    print("-" * 68)
    print(
        f"{payload['num_requests']:>9} {payload['requests_per_sec']:>9.0f} "
        f"{payload['p50_ms']:>8.3f} {payload['p95_ms']:>8.3f} "
        f"{payload['p99_ms']:>8.3f} {payload['cache_hit_rate']:>9.3f} "
        f"{payload['mean_batch']:>11.2f}"
    )
    path = publish_benchmark(BENCH_TAG, payload)
    print(f"\nwrote {path}")
    assert payload["p99_ms"] <= MAX_P99_MS, (
        f"p99 request latency {payload['p99_ms']:.2f} ms exceeds the "
        f"{MAX_P99_MS:.0f} ms serving budget"
    )
    assert payload["requests_per_sec"] >= MIN_RPS, (
        f"throughput {payload['requests_per_sec']:.0f} req/s is below the "
        f"{MIN_RPS:.0f} req/s acceptance bar"
    )
    print(
        f"OK (p99 <= {MAX_P99_MS:.0f} ms and >= {MIN_RPS:.0f} req/s under "
        f"Zipfian closed-loop load)"
    )


if __name__ == "__main__":
    main()
