"""Ablation benches for the two design choices documented in DESIGN.md.

1. **Marginal-diversity mode** — the analysis-consistent *sequential*
   incremental coverage (our default) vs the literal leave-one-out Eq. 5,
   which degenerates to ~0 when every topic is covered multiple times per
   list.  Expectation: sequential >= leave-one-out on utility, and the
   learned theta tracks the ground-truth preference only in sequential
   mode.

2. **Training-label censoring** — full-information attraction labels (our
   default) vs realistic censored DCM sessions.  Expectation: with
   censored labels at this scale, the learned re-ranker loses most of its
   edge over the initial ranking.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import RapidConfig, RapidReranker
from repro.data import build_batch
from repro.eval import evaluate_reranker, format_table, prepare_bundle
from repro.utils.rng import make_rng

from bench_utils import experiment_config, publish


def _theta_correlation(reranker, bundle) -> float:
    batch = build_batch(
        bundle.test_requests,
        bundle.world.catalog,
        bundle.world.population,
        bundle.histories,
    )
    theta_hat = reranker.model.preference_distribution(batch)
    theta_star = bundle.world.population.topic_preference[batch.user_ids]
    rows = [
        np.corrcoef(theta_hat[i], theta_star[i])[0, 1]
        for i in range(len(theta_hat))
        if theta_star[i].std() > 0
    ]
    return float(np.nanmean(rows))


def _run_marginal_mode() -> str:
    config = experiment_config("taobao", tradeoff=0.5)
    bundle = prepare_bundle(config)
    world = bundle.world
    table = {}
    for mode in ("sequential", "leave_one_out"):
        rapid_config = RapidConfig(
            user_dim=world.population.feature_dim,
            item_dim=world.catalog.feature_dim,
            num_topics=world.catalog.num_topics,
            hidden=config.hidden,
            marginal_mode=mode,
        )
        reranker = RapidReranker(rapid_config, "rapid-pro", config.train)
        reranker.fit(
            bundle.train_requests, world.catalog, world.population, bundle.histories
        )
        result = evaluate_reranker(reranker, bundle)
        table[mode] = {
            "click@5": result["click@5"],
            "div@5": result["div@5"],
            "click@10": result["click@10"],
            "div@10": result["div@10"],
            "corr(theta,theta*)": _theta_correlation(reranker, bundle),
        }
    return format_table(
        table, title="Ablation: marginal diversity mode (Taobao, lambda=0.5)"
    )


def _run_label_censoring() -> str:
    config = experiment_config("taobao", tradeoff=0.5)
    bundle = prepare_bundle(config)
    world = bundle.world
    rng = make_rng(config.seed + 99)

    # Re-simulate the training labels as realistic censored sessions.
    censored_requests = [
        dataclasses.replace(
            request,
            clicks=bundle.click_model.simulate(
                request.user_id, request.items, rng, full_information=False
            ),
            fully_observed=False,
        )
        for request in bundle.train_requests
    ]

    table = {"init": evaluate_reranker(None, bundle).metrics}
    for label, requests in (
        ("full-information", bundle.train_requests),
        ("censored-sessions", censored_requests),
    ):
        rapid_config = RapidConfig(
            user_dim=world.population.feature_dim,
            item_dim=world.catalog.feature_dim,
            num_topics=world.catalog.num_topics,
            hidden=config.hidden,
        )
        reranker = RapidReranker(rapid_config, "rapid-pro", config.train)
        reranker.fit(requests, world.catalog, world.population, bundle.histories)
        table[label] = evaluate_reranker(reranker, bundle).metrics
    return format_table(
        table,
        columns=["click@5", "ndcg@5", "div@5", "click@10"],
        title="Ablation: training-label censoring (Taobao, lambda=0.5)",
    )


def test_ablation_marginal_mode(benchmark):
    text = benchmark.pedantic(_run_marginal_mode, rounds=1, iterations=1)
    publish("ablation_marginal_mode", text)
    assert "sequential" in text


def test_ablation_label_censoring(benchmark):
    text = benchmark.pedantic(_run_label_censoring, rounds=1, iterations=1)
    publish("ablation_label_censoring", text)
    assert "censored-sessions" in text
