"""Extension bench — robustness to the user-behavior model.

The paper's theory generalizes cascade-model bandits to the DCM; this bench
asks the practical counterpart: does RAPID's edge over the relevance-only
re-ranker survive when the *simulated user* follows a cascade model or a
position-based model instead of the DCM it was evaluated under?

RAPID is trained on each environment's own (full-information) click logs
and compared to Init and PRM on expected clicks@5 under that environment.
Expected shape: the ordering Init < PRM <= RAPID holds across behaviors.
"""

from __future__ import annotations

import numpy as np

from repro.click import CascadeClickModel, DependentClickModel, PositionBasedModel
from repro.data import RankingRequest, build_batch
from repro.eval import format_table, make_reranker, prepare_bundle
from repro.utils.rng import make_rng

from bench_utils import experiment_config, publish

ENVIRONMENTS = {
    "dcm": lambda world: DependentClickModel(world, tradeoff=0.5),
    "cascade": lambda world: CascadeClickModel(world, tradeoff=0.5),
    "pbm": lambda world: PositionBasedModel(world, tradeoff=0.5),
}


def _run() -> str:
    config = experiment_config("taobao", tradeoff=0.5)
    bundle = prepare_bundle(config)
    world = bundle.world
    table: dict[str, dict[str, float]] = {}

    for env_name, make_env in ENVIRONMENTS.items():
        environment = make_env(world)
        rng = make_rng(config.seed + 17)
        # Relabel the train requests with this environment's clicks.
        train = [
            RankingRequest(
                request.user_id,
                request.items,
                request.initial_scores,
                clicks=environment.simulate(
                    request.user_id, request.items, rng, full_information=True
                ),
                fully_observed=True,
            )
            for request in bundle.train_requests
        ]

        row: dict[str, float] = {}
        for model_name in ("init", "prm", "rapid-pro"):
            reranker = make_reranker(model_name, bundle)
            if reranker is not None:
                reranker.fit(train, world.catalog, world.population, bundle.histories)
            batch = build_batch(
                bundle.test_requests,
                world.catalog,
                world.population,
                bundle.histories,
            )
            if reranker is None:
                perm = np.tile(np.arange(batch.list_length), (batch.batch_size, 1))
            else:
                perm = reranker.rerank(batch)
            clicks5 = np.mean(
                [
                    environment.expected_clicks(
                        request.user_id,
                        request.items[perm[i][: len(request.items)]],
                        5,
                    )
                    for i, request in enumerate(bundle.test_requests)
                ]
            )
            row[model_name] = float(clicks5)
        table[env_name] = row

    return format_table(
        table,
        columns=["init", "prm", "rapid-pro"],
        title="Click-model robustness: expected clicks@5 per environment",
    )


def test_click_model_robustness(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("click_model_robustness", text)
    assert "cascade" in text
