"""Microbenchmark: numerical sanitizer cost, disabled and enabled.

The sanitizer (``repro.testing.sanitize``) patches the Tensor op-dispatch
surface only while enabled; when disabled nothing is patched, so training
must run at full speed.  This bench proves that contract with wall clocks:

- **disabled residue** — per-batch training cost before any sanitizer use
  vs after an enable/disable cycle (a stale wrapper or leaked closure would
  show up here).  Gated under ``MAX_DISABLED_OVERHEAD`` (5%).
- **enabled overhead** — the same run with the sanitizer active, reported
  (not gated): the price of trapping NaN/Inf mid-graph, for TESTING.md's
  "when to enable" guidance.

Both ratios compare *minimum* observed per-batch latencies from
interleaved rounds (:func:`bench_utils.interleaved_min_of_k`): the min
isolates the code path's own cost, and interleaving keeps machine-load
drift off the ratios — mean-of-one-run measurement made the residue
fraction swing negative on busy machines.

Run the timing assertion directly::

    PYTHONPATH=src python benchmarks/bench_sanitizer_overhead.py

Results land in ``BENCH_sanitizer_overhead.json`` and the shared
``benchmarks/results/trajectory.jsonl`` via :func:`publish_benchmark`.
"""

from __future__ import annotations

from bench_utils import interleaved_min_of_k, publish_benchmark

from repro.core.rapid import RapidConfig, make_rapid_variant
from repro.core.trainer import TrainConfig, train_rapid
from repro.eval import ExperimentConfig, prepare_bundle
from repro.testing import disable_sanitizer, enable_sanitizer
from repro.utils.timer import Timings

BENCH_TAG = "sanitizer_overhead"
MAX_DISABLED_OVERHEAD = 0.05
TRAIN_RUNS = 3
REPEATS = 4


def _bundle():
    return prepare_bundle(
        ExperimentConfig(
            dataset="taobao",
            scale="tiny",
            list_length=8,
            num_train_requests=48,
            num_test_requests=8,
            ranker_interactions=300,
            hidden=4,
            train=TrainConfig(epochs=2, batch_size=16),
            seed=0,
        )
    )


def best_batch_seconds(bundle, sanitized: bool = False, runs: int = TRAIN_RUNS) -> float:
    """Fastest per-batch wall time across ``runs`` small real training runs."""
    rapid_config = RapidConfig(
        user_dim=bundle.world.population.feature_dim,
        item_dim=bundle.world.catalog.feature_dim,
        num_topics=bundle.world.catalog.num_topics,
        hidden=4,
        seed=0,
    )
    best = float("inf")
    if sanitized:
        enable_sanitizer()
    try:
        for _ in range(runs):
            timings = Timings()
            train_rapid(
                make_rapid_variant("rapid-det", rapid_config),
                bundle.train_requests,
                bundle.world.catalog,
                bundle.world.population,
                bundle.histories,
                config=bundle.config.train,
                timings=timings,
            )
            best = min(best, min(timings.samples))
    finally:
        if sanitized:
            disable_sanitizer()
    return best


def _cycle_sanitizer() -> None:
    """Full enable/disable cycle: any residue (stale wrappers, lingering
    closures) is exactly what the gate exists for."""
    enable_sanitizer()
    disable_sanitizer()


def measure() -> dict[str, float]:
    """Overhead breakdown: baseline, post-cycle residue, enabled cost."""
    bundle = _bundle()
    best_batch_seconds(bundle, runs=1)  # steady-state before timing
    best = interleaved_min_of_k(
        [
            ("baseline", lambda: best_batch_seconds(bundle)),
            (None, _cycle_sanitizer),
            ("disabled", lambda: best_batch_seconds(bundle)),
            ("enabled", lambda: best_batch_seconds(bundle, sanitized=True)),
        ],
        repeats=REPEATS,
    )
    return {
        "baseline_ms_per_batch": 1e3 * best["baseline"],
        "disabled_ms_per_batch": 1e3 * best["disabled"],
        "enabled_ms_per_batch": 1e3 * best["enabled"],
        "disabled_overhead_fraction": best["disabled"] / best["baseline"] - 1.0,
        "enabled_overhead_fraction": best["enabled"] / best["baseline"] - 1.0,
    }


def main() -> None:
    result = measure()
    print(
        f"baseline:                 {result['baseline_ms_per_batch']:.2f} ms/batch\n"
        f"after enable/disable:     {result['disabled_ms_per_batch']:.2f} ms/batch "
        f"({100 * result['disabled_overhead_fraction']:+.2f}%)\n"
        f"sanitizer enabled:        {result['enabled_ms_per_batch']:.2f} ms/batch "
        f"({100 * result['enabled_overhead_fraction']:+.2f}%)"
    )
    path = publish_benchmark(BENCH_TAG, result)
    print(f"published {path}")
    assert result["disabled_overhead_fraction"] < MAX_DISABLED_OVERHEAD, (
        f"sanitizer-disabled residue "
        f"{result['disabled_overhead_fraction']:.2%} exceeds the "
        f"{MAX_DISABLED_OVERHEAD:.0%} budget"
    )
    print(f"OK (disabled residue < {MAX_DISABLED_OVERHEAD:.0%} budget)")


if __name__ == "__main__":
    main()
