"""Extension bench — exploration policies for linear RAPID.

Compares the Theorem 5.1 UCB learner against epsilon-greedy and linear
Thompson sampling in the same linear DCM environment.  Expected shape: all
three are sublinear; UCB and Thompson converge to a near-zero per-round
gap, while epsilon-greedy pays a persistent exploration tax proportional
to epsilon.
"""

from __future__ import annotations

import numpy as np

from repro.eval import format_series
from repro.theory import compare_explorers

from bench_utils import publish

CHECKPOINTS = (100, 300, 600, 1200)


def _run() -> str:
    results = compare_explorers(horizon=max(CHECKPOINTS), seed=0)
    series = {
        name: [float(result.raw_regret[n - 1]) for n in CHECKPOINTS]
        for name, result in results.items()
    }
    late_gap = {
        name: float(
            (result.per_round_oracle - result.per_round_learner)[-300:].mean()
        )
        for name, result in results.items()
    }
    text = format_series(
        series,
        x_label="n",
        x_values=list(CHECKPOINTS),
        title=(
            "Explorer comparison, cumulative raw regret "
            f"(late per-round gap: "
            + ", ".join(f"{k}={v:.4f}" for k, v in late_gap.items())
            + ")"
        ),
        precision=2,
    )
    return text


def test_extension_explorers(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("extension_explorers", text)
    assert "ucb" in text
