"""Table III — overall performance on the App Store dataset.

Logged-click replay evaluation with rev@k as the headline utility metric
(bid-weighted clicks).  Expected shape: re-rankers beat Init; DPP leads
div@k with a utility cost; RAPID attains the best rev@k and click@k.
"""

from __future__ import annotations

from repro.eval import DEFAULT_MODELS, format_table, prepare_bundle, run_experiment

from bench_utils import experiment_config, publish

COLUMNS = [
    "click@5",
    "ndcg@5",
    "div@5",
    "rev@5",
    "click@10",
    "ndcg@10",
    "div@10",
    "rev@10",
]


def _run() -> str:
    config = experiment_config("appstore", eval_mode="logged")
    bundle = prepare_bundle(config)
    results = run_experiment(config, DEFAULT_MODELS, bundle=bundle)
    table = {name: result.metrics for name, result in results.items()}
    return format_table(table, columns=COLUMNS, title="Table III (App Store)")


def test_table3(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("table3_appstore", text)
    assert "rev@5" in text
