"""Table VI — training and inference efficiency: PRM vs DESA vs RAPID.

Reports total training wall-clock (train-all), mean per-batch training time
(train-b), and mean per-batch inference time (test-b) on all three
datasets.  Absolute numbers are hardware-bound (the paper used GPUs; this
reproduction is pure numpy), so the reproduction target is the *relative*
shape: RAPID's per-batch cost is comparable to PRM and it converges in a
similar or lower total time than DESA.
"""

from __future__ import annotations

import time

from repro.core import RapidConfig, RapidReranker
from repro.data import build_batch
from repro.eval import format_table, prepare_bundle
from repro.rerank import DESAReranker, PRMReranker
from repro.utils.timer import Timings

from bench_utils import bench_histogram, bench_timer, experiment_config, publish


def _measure(make_model, bundle, label: str) -> dict[str, float]:
    world = bundle.world
    dataset = bundle.config.dataset
    model = make_model()
    # Registry-backed series: per-batch training times accumulate in the
    # global ``bench.train_batch_ms{model=...,dataset=...}`` histogram;
    # Timings is just the shim that feeds it.
    timings = Timings(bench_histogram("train_batch", model=label, dataset=dataset))
    start = time.perf_counter()
    if isinstance(model, RapidReranker):
        from repro.core.trainer import train_rapid

        train_rapid(
            model.model,
            bundle.train_requests,
            world.catalog,
            world.population,
            bundle.histories,
            config=model.train_config,
            timings=timings,
        )
    else:
        model.fit(
            bundle.train_requests,
            world.catalog,
            world.population,
            bundle.histories,
            timings=timings,
        )
    train_all = time.perf_counter() - start

    inference = bench_histogram("test_batch", model=label, dataset=dataset)
    batch = build_batch(
        bundle.test_requests[:64], world.catalog, world.population, bundle.histories
    )
    for _ in range(5):
        with bench_timer("test_batch", model=label, dataset=dataset):
            model.score_batch(batch)
    return {
        "train-all (s)": train_all,
        "train-b (ms)": timings.mean_ms,
        "test-b (ms)": inference.mean,
    }


def _run() -> str:
    blocks = []
    for dataset in ("taobao", "movielens", "appstore"):
        config = experiment_config(dataset)
        bundle = prepare_bundle(config)
        world = bundle.world
        rapid_config = RapidConfig(
            user_dim=world.population.feature_dim,
            item_dim=world.catalog.feature_dim,
            num_topics=world.catalog.num_topics,
            hidden=config.hidden,
        )
        table = {
            "prm": _measure(
                lambda: PRMReranker(
                    hidden=config.hidden, epochs=config.train.epochs
                ),
                bundle,
                "prm",
            ),
            "desa": _measure(
                lambda: DESAReranker(
                    hidden=config.hidden, epochs=config.train.epochs
                ),
                bundle,
                "desa",
            ),
            "rapid": _measure(
                lambda: RapidReranker(
                    rapid_config, "rapid-pro", train_config=config.train
                ),
                bundle,
                "rapid",
            ),
        }
        blocks.append(
            format_table(
                table,
                columns=["train-all (s)", "train-b (ms)", "test-b (ms)"],
                title=f"Table VI (efficiency, {dataset})",
                precision=2,
            )
        )
    return "\n\n".join(blocks)


def test_table6_efficiency(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("table6_efficiency", text)
    assert "rapid" in text
