"""Table IV — robustness to the initial ranker (SVMRank, LambdaMART).

Reproduces the lambda = 0.9 comparison on click@10 / div@10 for both public
datasets with each alternative initial ranker.  Expected shape: the same
model ordering as with DIN — re-rankers lift Init, DPP trades utility for
diversity, RAPID leads utility.
"""

from __future__ import annotations

import pytest

from repro.eval import format_table, prepare_bundle, run_experiment

from bench_utils import experiment_config, publish

MODELS = (
    "init",
    "dlcm",
    "prm",
    "setrank",
    "srga",
    "mmr",
    "dpp",
    "desa",
    "ssd",
    "adpmmr",
    "pdgan",
    "rapid-det",
    "rapid-pro",
)


def _run(initial_ranker: str) -> str:
    blocks = []
    for dataset in ("taobao", "movielens"):
        config = experiment_config(
            dataset, tradeoff=0.9, initial_ranker=initial_ranker
        )
        bundle = prepare_bundle(config)
        results = run_experiment(config, MODELS, bundle=bundle)
        table = {name: result.metrics for name, result in results.items()}
        # click@5/div@5 are reported alongside the paper's click@10/div@10
        # because click@10 saturates on our shorter lists (K -> L).
        blocks.append(
            format_table(
                table,
                columns=["click@10", "div@10", "click@5", "div@5"],
                title=f"Table IV ({initial_ranker}, {dataset}, lambda=0.9)",
            )
        )
    return "\n\n".join(blocks)


@pytest.mark.parametrize("initial_ranker", ["svmrank", "lambdamart"])
def test_table4(benchmark, initial_ranker):
    text = benchmark.pedantic(_run, args=(initial_ranker,), rounds=1, iterations=1)
    publish(f"table4_{initial_ranker}", text)
    assert "rapid-pro" in text
