"""RQ5 decomposition bench — where do RAPID's gains come from?

Buckets test users by the topical breadth of their behavior history
(focused / middle / diverse) and reports expected clicks@5 and covered
topics@5 per bucket for Init, PRM and RAPID.

Expected shape: RAPID's diversity advantage over PRM is concentrated in
the *diverse* bucket (personalized diversification), while the focused
bucket sees near-relevance-only treatment — the paper's core thesis made
quantitative.
"""

from __future__ import annotations

from repro.eval import (
    diversity_by_breadth,
    format_table,
    make_reranker,
    prepare_bundle,
    utility_by_breadth,
)

from bench_utils import experiment_config, publish

BUCKET_LABELS = {"bucket0": "focused", "bucket1": "middle", "bucket2": "diverse"}


def _run() -> str:
    config = experiment_config("taobao", tradeoff=0.5)
    bundle = prepare_bundle(config)
    rerankers = {"init": None}
    for name in ("prm", "rapid-pro"):
        model = make_reranker(name, bundle)
        model.fit(
            bundle.train_requests,
            bundle.world.catalog,
            bundle.world.population,
            bundle.histories,
        )
        rerankers[name] = model

    table: dict[str, dict[str, float]] = {}
    for name, model in rerankers.items():
        utility = utility_by_breadth(model, bundle, k=5)
        diversity = diversity_by_breadth(model, bundle, k=5)
        row: dict[str, float] = {}
        for bucket, label in BUCKET_LABELS.items():
            if bucket in utility:
                row[f"click@5 {label}"] = utility[bucket]
                row[f"div@5 {label}"] = diversity[bucket]
        table[name] = row
    return format_table(
        table, title="RQ5: utility/diversity by user taste breadth (Taobao)"
    )


def test_rq5_breadth_decomposition(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("rq5_breadth_decomposition", text)
    assert "diverse" in text
