"""Microbenchmarks for the fused recurrent kernels (perf trajectory PR 2).

Times every fused op against the composed-op autograd graph it replaces —
same shapes, same parameters, forward **and** backward per iteration — plus
an end-to-end RAPID train step, and publishes the machine-readable record
``BENCH_pr2.json`` (repo root) while appending it to the cross-PR
trajectory in ``benchmarks/results/trajectory.jsonl``.

Run::

    PYTHONPATH=src python benchmarks/bench_kernels.py

Set ``REPRO_BENCH_KERNEL_REPEATS`` to adjust sampling (default 200 for the
cell microbenchmarks).
"""

from __future__ import annotations

import gc
import os
import time

import numpy as np

from repro import nn
from repro.nn import Tensor, kernels
from repro.nn.layers import recurrent

from bench_utils import publish_benchmark

BENCH_TAG = "pr2"

# Shapes mirror the "small" bench profile: batch 64 lists of length 15-20,
# hidden 16-32 — the regime the RAPID/DLCM/Seq2Slate hot loops live in.
CELL_BATCH = 64
CELL_HIDDEN = 32
SEQ_TIME = 20
SEQ_FEATURES = 24


def _repeats(default: int = 200) -> int:
    return int(os.environ.get("REPRO_BENCH_KERNEL_REPEATS", default))


def _time_ms(fn, repeats: int, warmup: int = 2) -> list[float]:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(1000.0 * (time.perf_counter() - start))
    return samples


def _summary(samples: list[float]) -> tuple[float, float]:
    ordered = np.sort(samples)
    return float(np.median(ordered)), float(ordered[int(0.95 * (len(ordered) - 1))])


def _compare(op: str, make_step, repeats: int, scale: float = 1.0) -> dict:
    """Time ``make_step()`` under both dispatch paths and summarize.

    Samples are interleaved in blocks with GC paused so drift in background
    load hits both paths equally; ``scale`` divides every sample (e.g. the
    number of timesteps, to report per-step cost of a whole-sequence run).
    """
    fused: list[float] = []
    composed: list[float] = []
    ratios: list[float] = []
    blocks = 8
    per_block = max(repeats // blocks, 5)
    for flag in (True, False):
        with kernels.use_fused(flag):
            for _ in range(10):
                make_step()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(blocks):
            with kernels.use_fused(True):
                block_fused = _time_ms(make_step, per_block, warmup=2)
            with kernels.use_fused(False):
                block_composed = _time_ms(make_step, per_block, warmup=2)
            fused += block_fused
            composed += block_composed
            # Per-block ratio of minimum times: the two paths run back to
            # back inside one block so load drift across the run cancels,
            # and the within-block minimum (timeit-style) discards samples
            # inflated by preemption rather than averaging them in.
            ratios.append(min(block_composed) / min(block_fused))
    finally:
        if gc_was_enabled:
            gc.enable()
    fused_median, fused_p95 = _summary([s / scale for s in fused])
    composed_median, composed_p95 = _summary([s / scale for s in composed])
    return {
        "op": op,
        "median_ms": fused_median,
        "p95_ms": fused_p95,
        "unfused_median_ms": composed_median,
        "unfused_p95_ms": composed_p95,
        "speedup_vs_unfused": float(np.median(ratios)),
    }


# ----------------------------------------------------------------------
# Cell-step microbenchmarks: one timestep, forward + backward.
# ----------------------------------------------------------------------


def bench_lstm_cell(repeats: int) -> dict:
    rng = np.random.default_rng(0)
    gates_data = rng.normal(size=(CELL_BATCH, 4 * CELL_HIDDEN))
    h_data = rng.normal(size=(CELL_BATCH, CELL_HIDDEN))
    c_data = rng.normal(size=(CELL_BATCH, CELL_HIDDEN))
    ones = np.ones((CELL_BATCH, CELL_HIDDEN))

    def step():
        gates = Tensor(gates_data, requires_grad=True)
        h = Tensor(h_data, requires_grad=True)
        c = Tensor(c_data, requires_grad=True)
        h_next, c_next = recurrent._lstm_step(gates, h, c, None)
        # Explicit upstream gradient: exercises both output closures
        # without timing a reduction that is identical on both paths.
        (h_next + c_next).backward(ones)

    return _compare("lstm_cell_fused", step, repeats)


def bench_gru_cell(repeats: int) -> dict:
    rng = np.random.default_rng(1)
    gi_data = rng.normal(size=(CELL_BATCH, 3 * CELL_HIDDEN))
    gh_data = rng.normal(size=(CELL_BATCH, 3 * CELL_HIDDEN))
    h_data = rng.normal(size=(CELL_BATCH, CELL_HIDDEN))
    ones = np.ones((CELL_BATCH, CELL_HIDDEN))

    def step():
        gi = Tensor(gi_data, requires_grad=True)
        gh = Tensor(gh_data, requires_grad=True)
        h = Tensor(h_data, requires_grad=True)
        recurrent._gru_step(gi, gh, h, None).backward(ones)

    return _compare("gru_cell_fused", step, repeats)


# ----------------------------------------------------------------------
# Step benchmarks (acceptance metric): one timestep of the sequence layer
# scan — fused scan kernel vs the composed per-step graph the escape hatch
# restores.  Reported per-step (total layer forward+backward time / T).
# ----------------------------------------------------------------------


def _sequence_bench(op: str, layer, repeats: int, scale: float = 1.0) -> dict:
    rng = np.random.default_rng(2)
    x_data = rng.normal(size=(CELL_BATCH, SEQ_TIME, SEQ_FEATURES))
    mask = rng.random((CELL_BATCH, SEQ_TIME)) < 0.8
    mask[:, 0] = True

    def step():
        layer.zero_grad()
        out = layer(Tensor(x_data), mask=mask)
        out = out[0] if isinstance(out, tuple) else out
        out.sum().backward()

    return _compare(op, step, repeats, scale=scale)


def bench_lstm_step(repeats: int) -> dict:
    layer = nn.LSTM(SEQ_FEATURES, CELL_HIDDEN, rng=np.random.default_rng(3))
    return _sequence_bench("lstm_step", layer, repeats, scale=SEQ_TIME)


def bench_gru_step(repeats: int) -> dict:
    layer = nn.GRU(SEQ_FEATURES, CELL_HIDDEN, rng=np.random.default_rng(4))
    return _sequence_bench("gru_step", layer, repeats, scale=SEQ_TIME)


# ----------------------------------------------------------------------
# Sequence-layer benchmarks: full scan, forward + backward.
# ----------------------------------------------------------------------


def bench_lstm_sequence(repeats: int) -> dict:
    layer = nn.LSTM(SEQ_FEATURES, CELL_HIDDEN, rng=np.random.default_rng(3))
    return _sequence_bench("lstm_sequence", layer, repeats)


def bench_gru_sequence(repeats: int) -> dict:
    layer = nn.GRU(SEQ_FEATURES, CELL_HIDDEN, rng=np.random.default_rng(4))
    return _sequence_bench("gru_sequence", layer, repeats)


def bench_bilstm_sequence(repeats: int) -> dict:
    layer = nn.BiLSTM(SEQ_FEATURES, CELL_HIDDEN // 2, rng=np.random.default_rng(5))
    return _sequence_bench("bilstm_sequence", layer, repeats)


# ----------------------------------------------------------------------
# End-to-end: one RAPID train step (forward + backward + Adam update).
# ----------------------------------------------------------------------


def bench_train_step(repeats: int) -> dict:
    from repro.core.rapid import RapidConfig, make_rapid_variant
    from repro.data import RankingRequest, build_batch, make_taobao_world

    world = make_taobao_world("tiny", seed=0)
    histories = world.sample_histories()
    rng = np.random.default_rng(0)
    requests = []
    for _ in range(32):
        items = rng.choice(world.config.num_items, size=10, replace=False)
        clicks = (rng.random(10) < 0.3).astype(float)
        requests.append(
            RankingRequest(
                int(rng.integers(world.config.num_users)),
                items,
                rng.normal(size=10),
                clicks=clicks,
            )
        )
    batch = build_batch(requests, world.catalog, world.population, histories)
    config = RapidConfig(
        user_dim=world.population.feature_dim,
        item_dim=world.catalog.feature_dim,
        num_topics=world.catalog.num_topics,
        hidden=16,
        seed=0,
    )
    model = make_rapid_variant("rapid-pro", config)
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    noise = np.random.default_rng(7)
    clicks = Tensor(batch.clicks)
    weights = Tensor(batch.training_mask.astype(np.float64))

    def step():
        optimizer.zero_grad()
        probs = model(batch, rng=noise).clip(1e-7, 1.0 - 1e-7)
        loss = -(
            (clicks * probs.log() + (1.0 - clicks) * (1.0 - probs).log()) * weights
        ).sum() * (1.0 / max(float(batch.training_mask.sum()), 1.0))
        loss.backward()
        optimizer.step()

    return _compare("rapid_train_step", step, max(repeats // 4, 20))


def run_all(repeats: int | None = None) -> dict:
    repeats = repeats if repeats is not None else _repeats()
    # Cell and full-sequence rows run first: they double as process burn-in
    # (allocator pools, adaptive-interpreter specialization) so the per-step
    # acceptance rows measure steady-state cost rather than cold-start cost.
    seq_repeats = max(repeats // 2, 20)
    rows = [
        bench_lstm_cell(repeats),
        bench_gru_cell(repeats),
        bench_lstm_sequence(seq_repeats),
        bench_gru_sequence(seq_repeats),
        bench_lstm_step(seq_repeats),
        bench_gru_step(seq_repeats),
        bench_bilstm_sequence(seq_repeats),
        bench_train_step(repeats),
    ]
    return {
        "benchmark": "fused_recurrent_kernels",
        "shapes": {
            "cell": [CELL_BATCH, CELL_HIDDEN],
            "sequence": [CELL_BATCH, SEQ_TIME, SEQ_FEATURES],
        },
        "notes": {
            "lstm_step": "per-timestep cost of the LSTM layer scan "
            "(total forward+backward time / T); unfused = REPRO_NN_FUSED=0 "
            "composed per-step graph",
            "gru_step": "per-timestep cost of the GRU layer scan",
            "lstm_cell_fused": "isolated single fused cell node vs the "
            "composed cell subgraph, same precomputed gate leaves",
        },
        "repeats": repeats,
        "ops": rows,
    }


def main() -> None:
    payload = run_all()
    path = publish_benchmark(BENCH_TAG, payload)
    header = (
        f"{'op':<20} {'fused med ms':>12} {'fused p95':>10} "
        f"{'unfused med':>12} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in payload["ops"]:
        print(
            f"{row['op']:<20} {row['median_ms']:>12.3f} {row['p95_ms']:>10.3f} "
            f"{row['unfused_median_ms']:>12.3f} {row['speedup_vs_unfused']:>7.2f}x"
        )
    print(f"\nwrote {path}")
    lstm_row = next(row for row in payload["ops"] if row["op"] == "lstm_step")
    assert lstm_row["speedup_vs_unfused"] >= 3.0, (
        f"fused LSTM step speedup {lstm_row['speedup_vs_unfused']:.2f}x "
        "is below the 3x acceptance bar"
    )
    print("OK (fused LSTM step >= 3x)")


if __name__ == "__main__":
    main()
