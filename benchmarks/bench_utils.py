"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure of the paper at a reduced
(but structurally faithful) scale, prints the resulting table, and persists
it under ``benchmarks/results/`` so the numbers survive pytest's output
capture.  Set ``REPRO_BENCH_PROFILE=full`` for the larger profile.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core.trainer import TrainConfig
from repro.eval import ExperimentConfig
from repro.obs import get_registry

RESULTS_DIR = Path(__file__).resolve().parent / "results"
REPO_ROOT = Path(__file__).resolve().parents[1]
TRAJECTORY_PATH = RESULTS_DIR / "trajectory.jsonl"

PROFILES = {
    "quick": dict(
        scale="tiny",
        list_length=12,
        num_train_requests=300,
        num_test_requests=80,
        ranker_interactions=1200,
        hidden=8,
        epochs=4,
    ),
    "small": dict(
        scale="small",
        list_length=15,
        num_train_requests=1200,
        num_test_requests=150,
        ranker_interactions=2000,
        hidden=16,
        epochs=8,
    ),
    "full": dict(
        scale="full",
        list_length=20,
        num_train_requests=3000,
        num_test_requests=300,
        ranker_interactions=4000,
        hidden=16,
        epochs=10,
    ),
}


def active_profile() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "small")


def experiment_config(
    dataset: str,
    tradeoff: float = 0.5,
    initial_ranker: str = "din",
    eval_mode: str = "expected",
    seed: int = 0,
    **overrides,
) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from the active bench profile."""
    profile = dict(PROFILES[active_profile()])
    profile.update(overrides)
    epochs = profile.pop("epochs")
    return ExperimentConfig(
        dataset=dataset,
        scale=profile["scale"],
        tradeoff=tradeoff,
        initial_ranker=initial_ranker,
        list_length=profile["list_length"],
        num_train_requests=profile["num_train_requests"],
        num_test_requests=profile["num_test_requests"],
        ranker_interactions=profile["ranker_interactions"],
        hidden=profile["hidden"],
        eval_mode=eval_mode,
        train=TrainConfig(epochs=epochs, batch_size=64, seed=seed),
        seed=seed,
    )


def publish(name: str, text: str) -> None:
    """Print a reproduced table and persist it to benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def publish_benchmark(tag: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark record and extend the trajectory.

    Writes ``BENCH_<tag>.json`` at the repo root (the per-PR snapshot) and
    upserts the same record into ``benchmarks/results/trajectory.jsonl``
    keyed by ``tag`` — re-running a benchmark replaces its own line while
    records from other PRs are preserved, so the perf trajectory
    accumulates across PRs instead of being overwritten.
    """
    record = {"tag": tag, **payload}
    snapshot = REPO_ROOT / f"BENCH_{tag}.json"
    snapshot.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    append_trajectory(record)
    return snapshot


def append_trajectory(record: dict) -> None:
    """Upsert ``record`` (keyed by its ``tag``) into the trajectory JSONL."""
    tag = record.get("tag")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rows: list[dict] = []
    if TRAJECTORY_PATH.exists():
        for line in TRAJECTORY_PATH.read_text().splitlines():
            if not line.strip():
                continue
            row = json.loads(line)
            if row.get("tag") != tag:
                rows.append(row)
    rows.append(record)
    TRAJECTORY_PATH.write_text(
        "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)
    )


def read_trajectory() -> list[dict]:
    """All benchmark records accumulated so far (empty if none yet)."""
    if not TRAJECTORY_PATH.exists():
        return []
    return [
        json.loads(line)
        for line in TRAJECTORY_PATH.read_text().splitlines()
        if line.strip()
    ]


def bench_histogram(stage: str, **labels):
    """Registry-backed latency histogram for a benchmark stage.

    All benches share the ``bench.<stage>_ms`` namespace in the
    process-global registry, so one pytest-benchmark session accumulates
    p50/p95/p99 across datasets — the registry replaces the per-bench
    ad-hoc ``Timings`` instances (which are now thin shims over the same
    histogram type; see ``repro.utils.timer``).
    """
    return get_registry().histogram(f"bench.{stage}_ms", **labels)


@contextmanager
def bench_timer(stage: str, **labels):
    """Time a block into :func:`bench_histogram`'s series (milliseconds)."""
    start = time.perf_counter()
    try:
        yield
    finally:
        bench_histogram(stage, **labels).observe(
            1000.0 * (time.perf_counter() - start)
        )
