"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure of the paper at a reduced
(but structurally faithful) scale, prints the resulting table, and persists
it under ``benchmarks/results/`` so the numbers survive pytest's output
capture.  Set ``REPRO_BENCH_PROFILE=full`` for the larger profile.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

from repro.core.trainer import TrainConfig
from repro.eval import ExperimentConfig
from repro.obs import get_registry

RESULTS_DIR = Path(__file__).resolve().parent / "results"
REPO_ROOT = Path(__file__).resolve().parents[1]
TRAJECTORY_PATH = RESULTS_DIR / "trajectory.jsonl"

# History depth per benchmark tag: enough for the regression sentinel
# (newest vs prior) plus a little trend context, without unbounded growth.
TRAJECTORY_KEEP = 5

PROFILES = {
    "quick": dict(
        scale="tiny",
        list_length=12,
        num_train_requests=300,
        num_test_requests=80,
        ranker_interactions=1200,
        hidden=8,
        epochs=4,
    ),
    "small": dict(
        scale="small",
        list_length=15,
        num_train_requests=1200,
        num_test_requests=150,
        ranker_interactions=2000,
        hidden=16,
        epochs=8,
    ),
    "full": dict(
        scale="full",
        list_length=20,
        num_train_requests=3000,
        num_test_requests=300,
        ranker_interactions=4000,
        hidden=16,
        epochs=10,
    ),
}


def active_profile() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "small")


def experiment_config(
    dataset: str,
    tradeoff: float = 0.5,
    initial_ranker: str = "din",
    eval_mode: str = "expected",
    seed: int = 0,
    **overrides,
) -> ExperimentConfig:
    """Build an :class:`ExperimentConfig` from the active bench profile."""
    profile = dict(PROFILES[active_profile()])
    profile.update(overrides)
    epochs = profile.pop("epochs")
    return ExperimentConfig(
        dataset=dataset,
        scale=profile["scale"],
        tradeoff=tradeoff,
        initial_ranker=initial_ranker,
        list_length=profile["list_length"],
        num_train_requests=profile["num_train_requests"],
        num_test_requests=profile["num_test_requests"],
        ranker_interactions=profile["ranker_interactions"],
        hidden=profile["hidden"],
        eval_mode=eval_mode,
        train=TrainConfig(epochs=epochs, batch_size=64, seed=seed),
        seed=seed,
    )


def publish(name: str, text: str) -> None:
    """Print a reproduced table and persist it to benchmarks/results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def publish_benchmark(tag: str, payload: dict) -> Path:
    """Persist a machine-readable benchmark record and extend the trajectory.

    Writes ``BENCH_<tag>.json`` at the repo root (the per-PR snapshot) and
    appends the same record to ``benchmarks/results/trajectory.jsonl``,
    keeping the last :data:`TRAJECTORY_KEEP` entries per ``tag`` — the
    per-tag history the regression sentinel (``repro.obs.regress``)
    compares newest-vs-prior over.

    After publishing, the sentinel checks this tag and prints its verdict.
    By default a regression only warns (benchmarks re-run on different
    machines drift); set ``REPRO_BENCH_REGRESS=strict`` to make it raise.
    """
    record = {"tag": tag, **payload}
    snapshot = REPO_ROOT / f"BENCH_{tag}.json"
    snapshot.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    append_trajectory(record)
    _sentinel_check(tag)
    return snapshot


def _sentinel_check(tag: str) -> None:
    """Run the regression sentinel for one tag; warn or (strict) raise."""
    from repro.obs import regress

    report = regress.check_trajectory(TRAJECTORY_PATH, tags=[tag])
    if report.ok:
        if report.compared_tags:
            print(f"regress sentinel: OK ({tag} vs prior entry)")
        return
    lines = "\n".join(row.describe() for row in report.regressions)
    message = f"regress sentinel: REGRESSION in {tag}:\n{lines}"
    if os.environ.get("REPRO_BENCH_REGRESS") == "strict":
        raise AssertionError(message)
    print(message)
    print("(warning only; set REPRO_BENCH_REGRESS=strict to fail on this)")


def append_trajectory(record: dict) -> None:
    """Append ``record`` to the trajectory, keeping per-tag history.

    Earlier records of the same tag are preserved (chronological order,
    oldest first) up to :data:`TRAJECTORY_KEEP`; records of other tags are
    untouched.
    """
    tag = record.get("tag")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rows: list[dict] = []
    if TRAJECTORY_PATH.exists():
        for line in TRAJECTORY_PATH.read_text().splitlines():
            if line.strip():
                rows.append(json.loads(line))
    rows.append(record)
    tag_rows = [row for row in rows if row.get("tag") == tag]
    drop = len(tag_rows) - TRAJECTORY_KEEP
    if drop > 0:
        doomed = {id(row) for row in tag_rows[:drop]}
        rows = [row for row in rows if id(row) not in doomed]
    TRAJECTORY_PATH.write_text(
        "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)
    )


def read_trajectory() -> list[dict]:
    """All benchmark records accumulated so far (empty if none yet)."""
    if not TRAJECTORY_PATH.exists():
        return []
    return [
        json.loads(line)
        for line in TRAJECTORY_PATH.read_text().splitlines()
        if line.strip()
    ]


def bench_histogram(stage: str, **labels):
    """Registry-backed latency histogram for a benchmark stage.

    All benches share the ``bench.<stage>_ms`` namespace in the
    process-global registry, so one pytest-benchmark session accumulates
    p50/p95/p99 across datasets — the registry replaces the per-bench
    ad-hoc ``Timings`` instances (which are now thin shims over the same
    histogram type; see ``repro.utils.timer``).
    """
    return get_registry().histogram(f"bench.{stage}_ms", **labels)


@contextmanager
def bench_timer(stage: str, **labels):
    """Time a block into :func:`bench_histogram`'s series (milliseconds)."""
    start = time.perf_counter()
    try:
        yield
    finally:
        bench_histogram(stage, **labels).observe(
            1000.0 * (time.perf_counter() - start)
        )


def interleaved_min_of_k(steps, repeats: int = 5) -> dict[str, float]:
    """Interleaved min-of-k measurement over named steps.

    ``steps`` is a sequence of ``(name, fn)`` pairs.  A named ``fn``
    returns one measured duration in **seconds** (typically itself a
    minimum over inner rounds); a pair with ``name=None`` is a side
    effect (an arm/disarm or enable/disable cycle) whose return value is
    ignored.  All steps run in order, ``repeats`` times, and the result
    maps each name to its minimum across repeats.

    Why this shape: the *minimum* observed latency isolates the cost of
    the code path itself (scheduler preemption and cache pollution only
    ever make a sample slower), and *interleaving* the compared
    conditions puts slow machine drift on both sides of every ratio.
    Measuring condition A's k rounds and then condition B's — the
    pattern this helper replaces — lets a background compile or thermal
    ramp land entirely on one side, which is how overhead fractions go
    negative.
    """
    steps = list(steps)
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    names = [name for name, _ in steps if name is not None]
    if len(names) != len(set(names)):
        raise ValueError("step names must be unique")
    best: dict[str, float] = {name: float("inf") for name in names}
    for _ in range(repeats):
        for name, fn in steps:
            value = fn()
            if name is not None:
                best[name] = min(best[name], float(value))
    return best
