"""Figure 3 — ablation study of RAPID's components.

Compares RAPID (= RAPID-pro) against RAPID-RNN (no personalized diversity
estimator), RAPID-mean (mean pooling instead of the per-topic LSTM),
RAPID-det (deterministic head), and RAPID-trans (transformer instead of the
Bi-LSTM) on click@10 and div@10 at lambda = 0.9.

Expected shape (paper Sec. IV-E2): RAPID-RNN loses both click@10 and
div@10; RAPID-mean loses diversity; RAPID-det loses diversity slightly;
RAPID-trans is comparable on clicks with slightly lower diversity.
"""

from __future__ import annotations

from repro.eval import format_table, prepare_bundle, run_experiment

from bench_utils import experiment_config, publish

VARIANTS = ("rapid-rnn", "rapid-mean", "rapid-det", "rapid-trans", "rapid-pro")


def _run() -> str:
    blocks = []
    # lambda = 0.5 makes the diversity components' contribution visible;
    # lambda = 0.9 matches the paper's reported setting.
    for tradeoff in (0.5, 0.9):
        config = experiment_config("taobao", tradeoff=tradeoff)
        bundle = prepare_bundle(config)
        results = run_experiment(config, VARIANTS, bundle=bundle)
        table = {name: result.metrics for name, result in results.items()}
        blocks.append(
            format_table(
                table,
                columns=["click@10", "div@10", "click@5", "div@5"],
                title=f"Figure 3 (ablation, Taobao, lambda={tradeoff})",
            )
        )
    return "\n\n".join(blocks)


def test_fig3_ablation(benchmark):
    text = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("fig3_ablation", text)
    assert "rapid-rnn" in text
